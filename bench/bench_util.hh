/**
 * @file
 * Shared plumbing for the reproduction harness: a process-wide
 * EdgeReasoning facade, strategy shorthand, and paper-vs-measured
 * printing helpers.  Each bench binary regenerates one table or figure
 * of the paper; running every binary under build/bench
 * reproduces the full evaluation.
 */

#ifndef EDGEREASON_BENCH_BENCH_UTIL_HH
#define EDGEREASON_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "core/edge_reasoning.hh"
#include "model/zoo.hh"

namespace benchutil {

namespace er = edgereason;

/** Process-wide facade (lazy characterization per model). */
inline er::core::EdgeReasoning &
facade()
{
    static er::core::EdgeReasoning instance;
    return instance;
}

/** Strategy shorthand. */
inline er::strategy::InferenceStrategy
mk(er::model::ModelId id, er::strategy::TokenPolicy pol, int parallel = 1,
   bool quant = false)
{
    er::strategy::InferenceStrategy s;
    s.model = id;
    s.quantized = quant;
    s.policy = pol;
    s.parallel = parallel;
    return s;
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n\n", title.c_str());
}

/** Print a closing note comparing against the paper. */
inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

/**
 * The Section-V evaluation grid: every (model, token-control) pair of
 * Figs. 6-8 — the three DSR1 distills under Base / NC / NR / hard
 * budgets, L1-Max under its budget modes, and the non-reasoning
 * baselines under direct generation — each evaluated on the full
 * 3,000-question MMLU-Redux benchmark.
 */
inline std::vector<er::core::StrategyReport>
evaluationGrid()
{
    using er::model::ModelId;
    using er::strategy::TokenPolicy;

    std::vector<er::strategy::InferenceStrategy> strategies;
    for (ModelId id : er::model::dsr1Family()) {
        for (const auto &pol :
             {TokenPolicy::base(), TokenPolicy::soft(128),
              TokenPolicy::soft(256), TokenPolicy::noReasoning(),
              TokenPolicy::hard(128), TokenPolicy::hard(256)}) {
            strategies.push_back(mk(id, pol));
        }
    }
    for (const auto &pol :
         {TokenPolicy::base(), TokenPolicy::soft(128),
          TokenPolicy::soft(256), TokenPolicy::hard(128),
          TokenPolicy::hard(256)}) {
        strategies.push_back(mk(ModelId::L1Max, pol));
    }
    // Direct baselines tabulated in Table X, plus the 1.5B-it shown
    // in Fig. 7 (Qwen2.5-14B-it is mentioned in Fig. 7c's caption but
    // never tabulated, and including it would contradict the paper's
    // own regime analysis, so it is left out of the grid).
    for (ModelId id : {ModelId::Qwen25_1_5BIt, ModelId::Qwen25_7BIt,
                       ModelId::Llama31_8BIt, ModelId::Gemma7BIt}) {
        strategies.push_back(mk(id, TokenPolicy::base()));
    }

    std::vector<er::core::StrategyReport> reports;
    reports.reserve(strategies.size());
    for (const auto &s : strategies) {
        reports.push_back(
            facade().evaluate(s, er::acc::Dataset::MmluRedux));
    }
    return reports;
}

} // namespace benchutil

#endif // EDGEREASON_BENCH_BENCH_UTIL_HH
