/**
 * @file
 * Reproduces Fig. 4: prefill-phase average power (left) and energy per
 * token (right) as a function of input sequence length, for the three
 * DSR1 models (5 repeated samples per point, as in the paper).
 */

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/table.hh"
#include "perfmodel/characterize.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

int
main()
{
    banner("Fig. 4: prefill power and energy per token vs input "
           "length");

    er::CsvWriter csv("fig04_prefill_power.csv");
    csv.writeRow(std::vector<std::string>{
        "model", "input_tokens", "power_w", "energy_per_token_j"});

    er::Table t("sampled points");
    t.setHeader({"Model", "I=128", "I=512", "I=1024", "I=2048",
                 "I=4096", "min E/tok at"});

    for (ModelId id : er::model::dsr1Family()) {
        auto &eng = facade().registry().engineFor(id, false);
        er::perf::SweepConfig cfg;
        const auto sweep = er::perf::sweepPrefill(eng, cfg);

        double min_e = 1e30;
        er::Tokens min_i = 0;
        std::map<er::Tokens, double> pw;
        for (std::size_t k = 0; k < sweep.power.size(); ++k) {
            const auto &p = sweep.power[k];
            const auto &e = sweep.energyPerToken[k];
            csv.writeRow(std::vector<std::string>{
                er::model::modelName(id), std::to_string(p.length),
                er::formatFixed(p.power, 3),
                er::formatFixed(e.energyPerToken, 6)});
            pw[p.length] = p.power;
            if (e.energyPerToken < min_e) {
                min_e = e.energyPerToken;
                min_i = e.length;
            }
        }
        t.row()
            .cell(er::model::modelName(id))
            .cell(er::formatFixed(pw[128], 1) + "W")
            .cell(er::formatFixed(pw[512], 1) + "W")
            .cell(er::formatFixed(pw[1024], 1) + "W")
            .cell(er::formatFixed(pw[2048], 1) + "W")
            .cell(er::formatFixed(pw[4096], 1) + "W")
            .cell(std::to_string(min_i) + " tok");
    }
    t.print(std::cout);

    note("paper: 1.5B stays ~6 W; 8B/14B exceed 20 W at 4k input; "
         "energy/token bottoms out near a few hundred tokens then "
         "plateaus/rises (Takeaway #3).");
    return 0;
}
