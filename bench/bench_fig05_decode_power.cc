/**
 * @file
 * Reproduces Fig. 5: decode-phase average power (left) and energy per
 * token (right) as a function of output sequence length at a fixed
 * 512-token input.
 */

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/table.hh"
#include "perfmodel/characterize.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

int
main()
{
    banner("Fig. 5: decode power and energy per token vs output "
           "length (I = 512)");

    er::CsvWriter csv("fig05_decode_power.csv");
    csv.writeRow(std::vector<std::string>{
        "model", "output_tokens", "power_w", "energy_per_token_j"});

    er::Table t("sampled points");
    t.setHeader({"Model", "P@O=64", "P@O=256", "P@O=1024", "P@O=2048",
                 "E/tok@O=1024"});

    std::map<ModelId, double> etok_1024;
    for (ModelId id : er::model::dsr1Family()) {
        auto &eng = facade().registry().engineFor(id, false);
        er::perf::SweepConfig cfg;
        const auto sweep = er::perf::sweepDecode(eng, cfg);

        std::map<er::Tokens, double> pw, et;
        for (std::size_t k = 0; k < sweep.power.size(); ++k) {
            const auto &p = sweep.power[k];
            const auto &e = sweep.energyPerToken[k];
            csv.writeRow(std::vector<std::string>{
                er::model::modelName(id), std::to_string(p.length),
                er::formatFixed(p.power, 3),
                er::formatFixed(e.energyPerToken, 5)});
            pw[p.length] = p.power;
            et[p.length] = e.energyPerToken;
        }
        etok_1024[id] = et[1024];
        t.row()
            .cell(er::model::modelName(id))
            .cell(er::formatFixed(pw[64], 1) + "W")
            .cell(er::formatFixed(pw[256], 1) + "W")
            .cell(er::formatFixed(pw[1024], 1) + "W")
            .cell(er::formatFixed(pw[2048], 1) + "W")
            .cell(er::formatFixed(et[1024], 3) + "J");
    }
    t.print(std::cout);

    std::printf("\nenergy/token ratio 14B : 1.5B at O=1024 = %.1fx "
                "(paper: ~7x)\n",
                etok_1024[ModelId::Dsr1Qwen14B] /
                    etok_1024[ModelId::Dsr1Qwen1_5B]);
    note("power grows logarithmically with output length; smaller "
         "models are substantially more energy-efficient per token.");
    return 0;
}
