/**
 * @file
 * Extension: compute-optimal test-time scaling (Section II-B cites the
 * sequential-vs-parallel scaling literature; Section V-C notes the
 * inflection where parallel may surpass sequential).  Fixing a total
 * decode-token budget k x O, this study asks how to split it between
 * chain length O and parallel samples k for maximum accuracy, per
 * model — and where the latency-optimal split differs from the
 * accuracy-optimal one.
 */

#include "bench_util.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;
using er::acc::Dataset;
using er::model::ModelId;
using er::strategy::TokenPolicy;

int
main()
{
    banner("Extension: sequential vs parallel split at a fixed total "
           "token budget (full MMLU-Redux)");

    const er::Tokens total_budget = 2048;
    const struct { int k; er::Tokens o; } splits[] = {
        {1, 2048}, {2, 1024}, {4, 512}, {8, 256}, {16, 128}, {32, 64}};

    for (ModelId id : {ModelId::Dsr1Llama8B, ModelId::Dsr1Qwen14B}) {
        er::Table t(std::string(er::model::modelName(id)) +
                    " — total budget " + std::to_string(total_budget) +
                    " tokens");
        t.setHeader({"k x O", "acc (%)", "latency (s)", "energy (J)"});
        double best_acc = 0.0;
        std::string best_label;
        for (const auto &sp : splits) {
            const auto rep = facade().evaluate(
                mk(id, TokenPolicy::hard(sp.o), sp.k),
                Dataset::MmluRedux);
            const std::string label = std::to_string(sp.k) + " x " +
                std::to_string(sp.o);
            t.row()
                .cell(label)
                .cell(rep.accuracyPct, 1)
                .cell(rep.avgLatency, 1)
                .cell(rep.avgEnergy, 1);
            if (rep.accuracyPct > best_acc) {
                best_acc = rep.accuracyPct;
                best_label = label;
            }
        }
        t.print(std::cout);
        std::printf("accuracy-optimal split: %s (%.1f%%)\n\n",
                    best_label.c_str(), best_acc);
    }

    note("long chains win while the sequential curve is still "
         "climbing (~400 tokens per Section V-C); past saturation the "
         "budget is better spent on parallel votes — and the parallel "
         "splits are also far faster, since samples decode "
         "concurrently.");
    return 0;
}
