/**
 * @file
 * Extension: quantifying Section III-B's claim that "edge deployment
 * costs also benefit from batching and increased QPS" — a
 * continuous-batching serving study on DeepScaleR-1.5B, sweeping
 * offered load and reporting throughput, latency percentiles, average
 * batch size, utilization and energy per query.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "engine/server.hh"

using namespace benchutil;
namespace er = edgereason;
using namespace er::engine;

int
main()
{
    banner("Extension: serving under load "
           "(DeepScaleR-1.5B, continuous batching, 120 requests, "
           "mean 120 in / 1024 out tokens)");

    auto &eng = facade().registry().engineFor(
        er::model::ModelId::DeepScaleR1_5B, false);
    ServerConfig cfg;
    cfg.maxBatch = 30; // the paper's Table III batch point
    ServingSimulator srv(eng, cfg);

    er::Table t("");
    t.setHeader({"offered QPS", "achieved QPS", "avg batch", "util",
                 "p50 lat (s)", "p95 lat (s)", "J/query",
                 "$/1M tokens"});
    for (double qps : {0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
        er::Rng rng(777, "serving-trace");
        const auto trace = ServingSimulator::poissonTrace(
            rng, 120, qps, 120, 1024);
        const auto rep = srv.run(trace);
        const auto cost = er::cost::edgeCost(
            rep.totalEnergy, rep.makespan,
            rep.generatedTokens);
        t.row()
            .cell(qps, 3)
            .cell(rep.throughputQps, 3)
            .cell(rep.avgBatch, 1)
            .cell(er::formatFixed(100.0 * rep.utilization, 0) + "%")
            .cell(rep.p50Latency, 1)
            .cell(rep.p95Latency, 1)
            .cell(rep.energyPerQuery, 1)
            .cell(cost.totalPerMTok(), 4);
    }
    t.print(std::cout);

    note("cost per token falls by an order of magnitude as load "
         "rises and the decode batch fills — the Table III batch-30 "
         "effect, here emerging from queueing rather than being "
         "configured.");

    // --- A day in the life: diurnal load on one device. ---
    banner("diurnal load replay (scaled day: 6 phases x 40 requests)");
    const struct { const char *phase; double qps; } day[] = {
        {"night (00-06)", 0.005}, {"morning ramp (06-09)", 0.05},
        {"midday peak (09-15)", 0.3}, {"afternoon (15-18)", 0.15},
        {"evening peak (18-22)", 0.4}, {"wind-down (22-24)", 0.02},
    };
    er::Table d("");
    d.setHeader({"phase", "offered QPS", "avg batch", "p95 lat (s)",
                 "J/query"});
    double day_energy = 0.0;
    double day_queries = 0.0;
    for (const auto &ph : day) {
        er::Rng rng(31, std::string("diurnal/") + ph.phase);
        const auto trace = ServingSimulator::poissonTrace(
            rng, 40, ph.qps, 120, 1024);
        const auto rep = srv.run(trace);
        day_energy += rep.totalEnergy;
        day_queries += static_cast<double>(rep.completed);
        d.row()
            .cell(ph.phase)
            .cell(ph.qps, 3)
            .cell(rep.avgBatch, 1)
            .cell(rep.p95Latency, 1)
            .cell(rep.energyPerQuery, 1);
    }
    d.print(std::cout);
    std::printf("\nblended day: %.0f queries at %.1f J/query average "
                "(%.4f kWh)\n", day_queries, day_energy / day_queries,
                day_energy / 3.6e6);
    note("night-time queries are ~5x more expensive per query than "
         "peak-hour ones on the same hardware — utilization, not "
         "model choice, drives edge serving economics.");
    return 0;
}
