/**
 * @file
 * Reproduces Table X: MMLU-Redux results for the Base (distilled),
 * Quantized (AWQ-W4) and Direct (non-reasoning) configurations —
 * accuracy, average tokens/question, average latency, and energy cost
 * per million tokens (3,000 questions per row).
 */

#include "bench_util.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;
using er::acc::Dataset;
using er::model::ModelId;
using er::strategy::TokenPolicy;

int
main()
{
    banner("Table X: MMLU-Redux — Base, Quantized, Direct "
           "(3k questions per row)");

    struct Row
    {
        const char *family;
        ModelId id;
        bool quant;
        double pAcc, pToks, pLat, pCost;
    };
    const Row rows[] = {
        {"Base", ModelId::Dsr1Qwen1_5B, false, 38.3, 740.2, 18.92,
         0.024},
        {"Base", ModelId::Dsr1Llama8B, false, 61.7, 811.1, 87.16,
         0.111},
        {"Base", ModelId::Dsr1Qwen14B, false, 80.6, 1317.8, 259.02,
         0.215},
        {"Base", ModelId::L1Max, false, 43.8, 312.6, 7.50, 0.013},
        {"Quantized", ModelId::Dsr1Qwen1_5B, true, 37.9, 698.5, 9.93,
         0.015},
        {"Quantized", ModelId::Dsr1Llama8B, true, 57.9, 549.1, 14.69,
         0.053},
        {"Quantized", ModelId::Dsr1Qwen14B, true, 80.1, 1235.8, -1,
         -1},
        {"Direct", ModelId::Qwen25_7BIt, false, 60.9, 40.2, 4.26,
         0.019},
        {"Direct", ModelId::Gemma7BIt, false, 33.9, 44.7, 4.71, 0.020},
        {"Direct", ModelId::Llama31_8BIt, false, 58.3, 63.5, 6.60,
         0.027},
    };

    er::Table t("");
    t.setHeader({"Family", "Model", "Acc(%)", "paper", "toks/Q",
                 "paper", "Lat(s)", "paper", "$/1M(E)", "paper"});
    for (const auto &row : rows) {
        const auto rep = facade().evaluate(
            mk(row.id, TokenPolicy::base(), 1, row.quant),
            Dataset::MmluRedux);
        t.row()
            .cell(row.family)
            .cell(er::model::modelName(row.id))
            .cell(rep.accuracyPct, 1).cell(row.pAcc, 1)
            .cell(rep.avgTokens, 1).cell(row.pToks, 1)
            .cell(rep.avgLatency, 2)
            .cell(row.pLat < 0 ? std::string("-")
                               : er::formatFixed(row.pLat, 2))
            .cell(rep.cost.energyPerMTok, 3)
            .cell(row.pCost < 0 ? std::string("-")
                                : er::formatFixed(row.pCost, 3));
    }
    t.print(std::cout);

    note("the paper's cost column is the energy component at "
         "$0.15/kWh (its hardware amortization is reported in "
         "Table III).");
    return 0;
}
