/**
 * @file
 * Extension: pluggable admission scheduling and chunked prefill.  The
 * paper's serving study batches whatever arrives (fcfs); this bench
 * quantifies what the layered scheduler stack buys on an edge box:
 *
 *   edf    earliest-deadline-first saves tight-deadline requests that
 *          fcfs lets expire behind loose ones;
 *   spjf   shortest-predicted-job-first (fitted Section-IV latency
 *          model, no oracle) drains short jobs out of the convoy
 *          behind long chain-of-thought generations;
 *   chunked prefill caps how long a huge prompt can freeze the
 *          in-flight decode batch, trading a little total prefill
 *          work for a much shorter tail.
 *
 * Each section prints p95/p99 latency, goodput, and deadline hit rate
 * across policies with and without chunking.
 */

#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "engine/server.hh"

using namespace benchutil;
namespace er = edgereason;
using namespace er::engine;

namespace {

ServingReport
runWith(InferenceEngine &eng, SchedulerPolicy policy, er::Tokens chunk,
        const er::perf::LatencyModel &model,
        const std::vector<ServerRequest> &trace, int max_batch)
{
    ServerConfig cfg;
    cfg.maxBatch = max_batch;
    cfg.scheduler = policy;
    cfg.prefillChunk = chunk;
    if (policy == SchedulerPolicy::Spjf)
        cfg.spjfModel = model;
    ServingSimulator srv(eng, cfg);
    return srv.run(trace);
}

/** Over-subscribed deadline mix: loose-deadline batch jobs arrive
 *  ahead of tight interactive ones, so admission order decides who
 *  survives. */
std::vector<ServerRequest>
deadlineTrace()
{
    std::vector<ServerRequest> trace;
    for (int i = 0; i < 20; ++i) {
        ServerRequest r;
        r.arrival = 0.02 * i;
        r.inputTokens = 128;
        r.outputTokens = 384;
        r.deadline = 600.0; // loose: background planning queries
        trace.push_back(r);
    }
    for (int i = 0; i < 20; ++i) {
        ServerRequest r;
        r.arrival = 0.4 + 0.02 * i;
        r.inputTokens = 128;
        r.outputTokens = 384;
        r.deadline = 60.0; // tight: interactive foreground
        trace.push_back(r);
    }
    return trace;
}

/** Bimodal output lengths, long jobs first: the classic convoy. */
std::vector<ServerRequest>
bimodalTrace()
{
    std::vector<ServerRequest> trace;
    for (int i = 0; i < 6; ++i)
        trace.push_back({0.01 * i, 128, 3072});
    for (int i = 0; i < 24; ++i)
        trace.push_back({0.06 + 0.01 * i, 128, 96});
    return trace;
}

/** Interactive decode cohorts with huge prompts landing mid-flight:
 *  the workload chunked prefill is for. */
std::vector<ServerRequest>
interferenceTrace()
{
    std::vector<ServerRequest> trace;
    for (int i = 0; i < 10; ++i)
        trace.push_back({0.01 * i, 64, 24});
    trace.push_back({0.5, 8192, 8});
    for (int i = 0; i < 10; ++i)
        trace.push_back({30.0 + 0.01 * i, 64, 24});
    trace.push_back({30.5, 8192, 8});
    for (int i = 0; i < 20; ++i)
        trace.push_back({60.0 + 1.0 * i, 64, 24});
    return trace;
}

} // namespace

int
main()
{
    const auto id = er::model::ModelId::DeepScaleR1_5B;
    auto &eng = facade().registry().engineFor(id, false);
    const auto model = facade().characterization(id, false).latency;

    const SchedulerPolicy policies[] = {SchedulerPolicy::Fcfs,
                                        SchedulerPolicy::Edf,
                                        SchedulerPolicy::Spjf};
    const er::Tokens chunks[] = {0, 256};

    // --- Deadline hit rate under over-subscription. -----------------
    banner("scheduler policies under an over-subscribed deadline mix "
           "(DeepScaleR-1.5B, 40 requests, loose arrivals first)");
    {
        const auto trace = deadlineTrace();
        er::Table t("");
        t.setHeader({"policy", "chunk", "p95 (s)", "p99 (s)",
                     "mean (s)", "goodput QPS", "hit rate %"});
        ServingReport fcfs0, edf0;
        for (auto policy : policies) {
            for (auto chunk : chunks) {
                const auto rep =
                    runWith(eng, policy, chunk, model, trace, 2);
                if (policy == SchedulerPolicy::Fcfs && chunk == 0)
                    fcfs0 = rep;
                if (policy == SchedulerPolicy::Edf && chunk == 0)
                    edf0 = rep;
                t.row()
                    .cell(schedulerPolicyName(policy))
                    .cell(static_cast<long long>(chunk))
                    .cell(rep.p95Latency, 2)
                    .cell(rep.p99Latency, 2)
                    .cell(rep.meanLatency, 2)
                    .cell(rep.goodputQps, 3)
                    .cell(100.0 * rep.deadlineHitRate, 1);
            }
        }
        t.print(std::cout);
        std::printf("edf vs fcfs deadline hit rate: %.0f%% vs %.0f%% "
                    "(%s)\n",
                    100.0 * edf0.deadlineHitRate,
                    100.0 * fcfs0.deadlineHitRate,
                    edf0.deadlineHitRate > fcfs0.deadlineHitRate
                        ? "edf saves the tight-deadline class"
                        : "NO IMPROVEMENT -- REGRESSION");
    }

    // --- Mean latency under a bimodal convoy. -----------------------
    banner("shortest-predicted-job-first on bimodal output lengths "
           "(6 x 3072-token chains ahead of 24 x 96-token queries)");
    {
        const auto trace = bimodalTrace();
        er::Table t("");
        t.setHeader({"policy", "p50 (s)", "p95 (s)", "mean (s)"});
        ServingReport fcfs, spjf;
        for (auto policy : policies) {
            const auto rep = runWith(eng, policy, 0, model, trace, 1);
            if (policy == SchedulerPolicy::Fcfs)
                fcfs = rep;
            if (policy == SchedulerPolicy::Spjf)
                spjf = rep;
            t.row()
                .cell(schedulerPolicyName(policy))
                .cell(rep.p50Latency, 2)
                .cell(rep.p95Latency, 2)
                .cell(rep.meanLatency, 2);
        }
        t.print(std::cout);
        std::printf("spjf vs fcfs mean latency: %.2f s vs %.2f s "
                    "(%s)\n",
                    spjf.meanLatency, fcfs.meanLatency,
                    spjf.meanLatency < fcfs.meanLatency
                        ? "short jobs no longer convoy"
                        : "NO IMPROVEMENT -- REGRESSION");
    }

    // --- Chunked prefill vs the tail. -------------------------------
    banner("chunked prefill under huge-prompt interference "
           "(8192-token prompts landing on interactive decode "
           "cohorts)");
    {
        const auto trace = interferenceTrace();
        er::Table t("");
        t.setHeader({"policy", "chunk", "p95 (s)", "p99 (s)",
                     "mean (s)", "makespan (s)"});
        ServingReport plain, chunked;
        for (auto policy : policies) {
            for (er::Tokens chunk : {er::Tokens(0), er::Tokens(128),
                                     er::Tokens(256)}) {
                const auto rep =
                    runWith(eng, policy, chunk, model, trace, 16);
                if (policy == SchedulerPolicy::Fcfs) {
                    if (chunk == 0)
                        plain = rep;
                    else if (chunk == 128)
                        chunked = rep;
                }
                t.row()
                    .cell(schedulerPolicyName(policy))
                    .cell(static_cast<long long>(chunk))
                    .cell(rep.p95Latency, 2)
                    .cell(rep.p99Latency, 2)
                    .cell(rep.meanLatency, 2)
                    .cell(rep.makespan, 2);
            }
        }
        t.print(std::cout);
        std::printf("chunk=128 vs chunk=0 p95 latency (fcfs): %.2f s "
                    "vs %.2f s (%s)\n",
                    chunked.p95Latency, plain.p95Latency,
                    chunked.p95Latency < plain.p95Latency
                        ? "bounded prefill stalls shorten the tail"
                        : "NO IMPROVEMENT -- REGRESSION");
    }
    return 0;
}
