/**
 * @file
 * Reproduces Fig. 13: decode-phase power (left) and energy per token
 * (right) versus output length at a 512-token input, for the
 * quantized models.
 */

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/table.hh"
#include "perfmodel/characterize.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

int
main()
{
    banner("Fig. 13: quantized decode power and energy per token "
           "(I = 512)");

    er::CsvWriter csv("fig13_quant_decode_power.csv");
    csv.writeRow(std::vector<std::string>{
        "model", "output_tokens", "power_w", "energy_per_token_j"});

    er::Table t("");
    t.setHeader({"Model (W4)", "P@O=128", "P@O=1024", "E/tok@O=1024",
                 "E/tok fp16@O=1024"});
    for (ModelId id : er::model::dsr1Family()) {
        auto &w4 = facade().registry().engineFor(id, true);
        auto &fp16 = facade().registry().engineFor(id, false);
        er::perf::SweepConfig cfg;
        const auto sweep = er::perf::sweepDecode(w4, cfg);
        std::map<er::Tokens, double> pw, et;
        for (std::size_t k = 0; k < sweep.power.size(); ++k) {
            pw[sweep.power[k].length] = sweep.power[k].power;
            et[sweep.energyPerToken[k].length] =
                sweep.energyPerToken[k].energyPerToken;
            csv.writeRow(std::vector<std::string>{
                er::model::modelName(id),
                std::to_string(sweep.power[k].length),
                er::formatFixed(sweep.power[k].power, 3),
                er::formatFixed(
                    sweep.energyPerToken[k].energyPerToken, 5)});
        }
        const auto fp = fp16.run(512, 1024);
        const double fp_etok = fp.decode.energy / 1024.0;
        t.row()
            .cell(er::model::modelName(id))
            .cell(er::formatFixed(pw[128], 1) + "W")
            .cell(er::formatFixed(pw[1024], 1) + "W")
            .cell(er::formatFixed(et[1024], 3) + "J")
            .cell(er::formatFixed(fp_etok, 3) + "J");
    }
    t.print(std::cout);

    note("Takeaway #11: W4 quantization reduces energy per decoded "
         "token; gains grow with model size.");
    return 0;
}
