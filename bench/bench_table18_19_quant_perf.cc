/**
 * @file
 * Reproduces Tables XVIII-XIX (Appendix D): base vs W4A16-quantized
 * prefill performance (averaged over the input-length sweep
 * [128, 4096]) and decode performance (input 512, output sweep
 * [128, 2048]).
 */

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

int
main()
{
    const er::Tokens prefill_lens[] = {128, 256, 512, 1024, 2048, 4096};
    const er::Tokens decode_lens[] = {128, 256, 512, 1024, 2048};

    banner("Table XVIII: prefill performance, base vs quantized "
           "(averaged over input sweep [128, 4096])");
    {
        const double paper_time[2][3] = {{0.33, 2.60, 3.63},
                                         {0.15, 0.55, 2.21}};
        const double paper_power[2][3] = {{5.6, 17.0, 23.5},
                                          {4.8, 13.6, 20.5}};
        er::Table t("");
        t.setHeader({"Model", "Time (s)", "paper", "Tok/s (k)",
                     "Power (W)", "paper"});
        for (int quant = 0; quant <= 1; ++quant) {
            int mi = 0;
            for (ModelId id : er::model::dsr1Family()) {
                auto &eng = facade().registry().engineFor(id, quant);
                er::RunningStats time, tps, power;
                for (er::Tokens len : prefill_lens) {
                    const auto m = eng.prefillOnly(len);
                    time.add(m.seconds);
                    tps.add(static_cast<double>(len) / m.seconds /
                            1e3);
                    power.add(m.avgPower);
                }
                t.row()
                    .cell(std::string(er::model::modelName(id)) +
                          (quant ? "-AWQ-W4" : ""))
                    .cell(time.mean(), 2).cell(paper_time[quant][mi], 2)
                    .cell(tps.mean(), 1)
                    .cell(power.mean(), 1)
                    .cell(paper_power[quant][mi], 1);
                ++mi;
            }
        }
        t.print(std::cout);
    }

    banner("Table XIX: decode performance, base vs quantized "
           "(I=512, output sweep [128, 2048])");
    {
        const double paper_tps[2][3] = {{38.2, 9.0, 5.0},
                                        {73.6, 25.9, 15.1}};
        const double paper_power[2][3] = {{19.6, 24.4, 26.5},
                                          {16.2, 25.4, 28.5}};
        er::Table t("");
        t.setHeader({"Model", "Time (s)", "Tok/s", "paper",
                     "Power (W)", "paper"});
        for (int quant = 0; quant <= 1; ++quant) {
            int mi = 0;
            for (ModelId id : er::model::dsr1Family()) {
                auto &eng = facade().registry().engineFor(id, quant);
                er::RunningStats time, tps, power;
                for (er::Tokens o : decode_lens) {
                    const auto r = eng.run(512, o);
                    time.add(r.decode.seconds);
                    tps.add(static_cast<double>(o) /
                            r.decode.seconds);
                    power.add(r.decode.avgPower);
                }
                t.row()
                    .cell(std::string(er::model::modelName(id)) +
                          (quant ? "-AWQ-W4" : ""))
                    .cell(time.mean(), 2)
                    .cell(tps.mean(), 1).cell(paper_tps[quant][mi], 1)
                    .cell(power.mean(), 1)
                    .cell(paper_power[quant][mi], 1);
                ++mi;
            }
        }
        t.print(std::cout);
    }

    note("quantization roughly halves decode time per token at "
         "slightly different power, with larger models gaining more.");
    return 0;
}
