/**
 * @file
 * Reproduces Tables XVI-XVII (Appendix C): prefill and decode latency
 * of the 12-core Cortex-A78AE CPU backend versus the GPU.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "engine/engine.hh"
#include "model/calibration.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

namespace {

er::engine::InferenceEngine
makeEngine(ModelId id, er::hw::Backend backend)
{
    er::engine::EngineConfig cfg;
    cfg.backend = backend;
    cfg.measurementNoise = false;
    return er::engine::InferenceEngine(
        er::model::spec(id), er::model::calibration(id), cfg);
}

} // namespace

int
main()
{
    banner("Table XVI: prefill latency, CPU vs GPU (s)");
    {
        const double paper_cpu[4][3] = {{8.44, 46.5, 79.29},
                                        {17.0, 89.7, 167.0},
                                        {37.1, 157.0, 344.2},
                                        {75.6, 384.0, 734.2}};
        er::Table t("");
        t.setHeader({"Len", "1.5B CPU", "paper", "1.5B GPU",
                     "8B CPU", "paper", "8B GPU",
                     "14B CPU", "paper", "14B GPU"});
        const er::Tokens lens[] = {128, 256, 512, 1024};
        int li = 0;
        for (er::Tokens len : lens) {
            t.row().cell(static_cast<long long>(len));
            int mi = 0;
            for (ModelId id : er::model::dsr1Family()) {
                auto cpu = makeEngine(id, er::hw::Backend::Cpu);
                auto gpu = makeEngine(id, er::hw::Backend::Gpu);
                t.cell(cpu.prefillLatency(len), 1)
                    .cell(paper_cpu[li][mi], 1)
                    .cell(gpu.prefillLatency(len), 3);
                ++mi;
            }
            ++li;
        }
        t.print(std::cout);
    }

    banner("Table XVII: decode latency for O output tokens at I=512, "
           "CPU vs GPU (s)");
    {
        const double paper_cpu[3][2] = {{63.8, 113.5},
                                        {128.8, 228.8},
                                        {521.5, 926.5}};
        const double paper_gpu[3][2] = {{12.9, 23.7},
                                        {26.1, 47.5},
                                        {104.5, 190.5}};
        er::Table t("");
        t.setHeader({"Out len", "8B CPU", "paper", "8B GPU", "paper",
                     "14B CPU", "paper", "14B GPU", "paper"});
        const er::Tokens outs[] = {128, 256, 1024};
        int oi = 0;
        for (er::Tokens o : outs) {
            t.row().cell(static_cast<long long>(o));
            int mi = 0;
            for (ModelId id : {ModelId::Dsr1Llama8B,
                               ModelId::Dsr1Qwen14B}) {
                auto cpu = makeEngine(id, er::hw::Backend::Cpu);
                auto gpu = makeEngine(id, er::hw::Backend::Gpu);
                t.cell(cpu.run(512, o).decode.seconds, 1)
                    .cell(paper_cpu[oi][mi], 1)
                    .cell(gpu.run(512, o).decode.seconds, 1)
                    .cell(paper_gpu[oi][mi], 1);
                ++mi;
            }
            ++oi;
        }
        t.print(std::cout);
    }

    note("the CPU is 100-200x slower at prefill (compute-bound NEON) "
         "and ~5x slower at decode (achievable DRAM bandwidth); Table "
         "XVII's published 64-token row is an outlier the paper does "
         "not explain, so it is omitted.");
    return 0;
}
