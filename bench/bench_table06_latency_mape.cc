/**
 * @file
 * Reproduces Table VI: mean absolute percentage error of the fitted
 * analytical latency models on 50 held-out questions.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "perfmodel/paper_reference.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

int
main()
{
    banner("Table VI: latency model MAPE on held-out questions");

    er::Table t("");
    t.setHeader({"Model", "Prefill", "paper", "Decode", "paper",
                 "Total", "paper"});
    for (ModelId id : er::model::dsr1Family()) {
        const auto &c = facade().characterization(id);
        const auto paper = er::perf::paper::latencyMape(id);
        t.row()
            .cell(er::model::modelName(id))
            .cell(er::formatFixed(c.prefillMapePct, 2) + "%")
            .cell(er::formatFixed(paper->prefill, 2) + "%")
            .cell(er::formatFixed(c.decodeMapePct, 2) + "%")
            .cell(er::formatFixed(paper->decode, 2) + "%")
            .cell(er::formatFixed(c.totalMapePct, 2) + "%")
            .cell(er::formatFixed(paper->total, 2) + "%");
    }
    t.print(std::cout);

    note("Takeaway #1: polynomial models fit edge LLM latency with "
         "sub-1% total MAPE.");
    return 0;
}
