/**
 * @file
 * Extension: resilient fleet serving under node failures.  The paper
 * characterizes one edge GPU in isolation; a deployed site runs a
 * rack of them behind a router, and the boxes crash.  This bench
 * sweeps the node crash rate over a 4-node heterogeneous fleet
 * (MAXN / 50W / 30W / 15W Orin power modes) with per-request
 * deadlines, retry + failover enabled, and compares routing policies:
 *
 *   rr        round-robin over healthy nodes
 *   least     fewest-backlog node
 *   deadline  earliest predicted finish (EDF-flavoured dispatch)
 *   cost      cheapest deadline-feasible node (energy proxy)
 *
 * Goodput (deadline-met completions per second) is the headline
 * metric.  Round-robin keeps feeding the slow 15 W node and the
 * crash-victim's retries land blindly; load- and deadline-aware
 * policies should hold goodput as the failure rate climbs.  The run
 * asserts the conservation invariant at every point: no request is
 * ever lost, whatever the crash schedule.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "engine/server.hh"
#include "fleet/fleet.hh"
#include "hw/gpu_spec.hh"

using namespace benchutil;
namespace er = edgereason;
using namespace er::fleet;
using er::engine::ServingSimulator;

namespace {

/** The deployment: four Orin boxes at descending power caps. */
FleetConfig
siteFleet(RouterPolicy policy, double crashes_per_hour)
{
    const er::hw::PowerMode modes[4] = {
        er::hw::PowerMode::MaxN, er::hw::PowerMode::W50,
        er::hw::PowerMode::W30, er::hw::PowerMode::W15};
    FleetConfig fc;
    for (int i = 0; i < 4; ++i) {
        NodeSpec s;
        s.model = er::model::ModelId::DeepScaleR1_5B;
        s.powerMode = modes[i];
        fc.nodes.push_back(s);
    }
    fc.server.maxBatch = 8;
    fc.router = policy;
    fc.maxRetries = 3;
    fc.retryBackoff = 0.25;
    fc.nodeFaults.seed = 0xF1EE7;
    fc.nodeFaults.horizon = 3600.0;
    fc.nodeFaults.crashesPerHour = crashes_per_hour;
    fc.nodeFaults.meanRebootSeconds = 20.0;
    return fc;
}

} // namespace

int
main()
{
    banner("fleet goodput vs node failure rate "
           "(4x DeepScaleR-1.5B on Orin MAXN/50W/30W/15W, 160 "
           "requests, mean 96 in / 256 out, 90 s deadline, retry 3 + "
           "failover)");

    const RouterPolicy policies[4] = {
        RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
        RouterPolicy::DeadlineAware, RouterPolicy::CostAware};

    er::Rng rng(777, "fleet-sweep");
    auto trace = ServingSimulator::poissonTrace(rng, 160, 1.6, 96, 256);
    for (auto &r : trace)
        r.deadline = 90.0;

    er::Table t("");
    t.setHeader({"crashes/h", "policy", "goodput", "hit%", "served",
                 "timed out", "retries", "failovers", "crashes"});
    double best_gain = 0.0;
    double best_rate = 0.0;
    double best_rr = 0.0;
    double best_other = 0.0;
    const char *best_policy = "";
    for (double rate : {0.0, 30.0, 60.0, 120.0}) {
        double rr_goodput = 0.0;
        for (const RouterPolicy p : policies) {
            FleetSimulator sim(siteFleet(p, rate));
            const auto rep = sim.run(trace);

            // Conservation: every arrival reaches exactly one
            // terminal state even while nodes crash mid-decode.
            if (rep.served + rep.timedOut + rep.shed + rep.offloaded !=
                rep.arrivals) {
                std::printf("CONSERVATION VIOLATION at rate %.0f "
                            "policy %s\n",
                            rate, routerPolicyName(p));
                return 1;
            }

            std::uint64_t crashes = 0;
            for (const auto &node : rep.nodes)
                crashes += node.crashes;
            if (p == RouterPolicy::RoundRobin)
                rr_goodput = rep.goodput;
            else if (rate > 0.0 && rep.goodput > rr_goodput) {
                const double gain = rep.goodput - rr_goodput;
                if (gain > best_gain) {
                    best_gain = gain;
                    best_rate = rate;
                    best_rr = rr_goodput;
                    best_other = rep.goodput;
                    best_policy = routerPolicyName(p);
                }
            }
            t.row()
                .cell(rate, 0)
                .cell(routerPolicyName(p))
                .cell(rep.goodput, 4)
                .cell(100.0 * rep.deadlineHitRate, 0)
                .cell(static_cast<long long>(rep.served))
                .cell(static_cast<long long>(rep.timedOut))
                .cell(static_cast<long long>(rep.retries))
                .cell(static_cast<long long>(rep.failovers))
                .cell(static_cast<long long>(crashes));
        }
    }
    t.print(std::cout);

    if (best_gain > 0.0) {
        std::printf("\nrouting wins under failures: at %.0f "
                    "crashes/h, router=%s sustains %.4f goodput vs "
                    "%.4f for round-robin (+%.0f%%)\n",
                    best_rate, best_policy, best_other, best_rr,
                    100.0 * best_gain / std::max(best_rr, 1e-12));
    } else {
        std::printf("\nno routing policy beat round-robin goodput "
                    "under failures -- investigate\n");
    }
    note("every cell above ran the full retry/failover path with the "
         "fleet conservation auditor's terminal-state check; a lost "
         "request fails the bench.");
    return 0;
}
