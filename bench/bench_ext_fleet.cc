/**
 * @file
 * Extension: resilient fleet serving under node failures.  The paper
 * characterizes one edge GPU in isolation; a deployed site runs a
 * rack of them behind a router, and the boxes crash.  This bench
 * sweeps the node crash rate over a 4-node heterogeneous fleet
 * (MAXN / 50W / 30W / 15W Orin power modes) with per-request
 * deadlines, retry + failover enabled, and compares routing policies:
 *
 *   rr        round-robin over healthy nodes
 *   least     fewest-backlog node
 *   deadline  earliest predicted finish (EDF-flavoured dispatch)
 *   cost      cheapest deadline-feasible node (energy proxy)
 *
 * Goodput (deadline-met completions per second) is the headline
 * metric.  Round-robin keeps feeding the slow 15 W node and the
 * crash-victim's retries land blindly; load- and deadline-aware
 * policies should hold goodput as the failure rate climbs.  The run
 * asserts the conservation invariant at every point: no request is
 * ever lost, whatever the crash schedule.
 *
 * A second sweep covers the *gray* failure mode: one node never
 * crashes but runs its windows at a latency multiple (a thermally
 * throttled box that still answers health checks).  The static
 * consecutive-failure breaker is blind to it — slow legs still
 * complete — so the sweep compares goodput with the breaker as-is
 * vs. the quantile-adaptive breaker (eject when a node's streaming
 * p95 completion latency exceeds 2x the fleet median).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "engine/server.hh"
#include "engine/trace_stream.hh"
#include "fleet/fleet.hh"
#include "hw/gpu_spec.hh"

using namespace benchutil;
namespace er = edgereason;
using namespace er::fleet;
using er::engine::ServingSimulator;

namespace {

/** The deployment: four Orin boxes at descending power caps. */
FleetConfig
siteFleet(RouterPolicy policy, double crashes_per_hour)
{
    const er::hw::PowerMode modes[4] = {
        er::hw::PowerMode::MaxN, er::hw::PowerMode::W50,
        er::hw::PowerMode::W30, er::hw::PowerMode::W15};
    FleetConfig fc;
    for (int i = 0; i < 4; ++i) {
        NodeSpec s;
        s.model = er::model::ModelId::DeepScaleR1_5B;
        s.powerMode = modes[i];
        fc.nodes.push_back(s);
    }
    fc.server.maxBatch = 8;
    fc.router = policy;
    fc.maxRetries = 3;
    fc.retryBackoff = 0.25;
    fc.nodeFaults.seed = 0xF1EE7;
    fc.nodeFaults.horizon = 3600.0;
    fc.nodeFaults.crashesPerHour = crashes_per_hour;
    fc.nodeFaults.meanRebootSeconds = 20.0;
    return fc;
}

/** Homogeneous 4-node fleet with node 0 running @p mult x slow for
 *  the whole run (gray: alive, responsive, never crashes).  The
 *  static breaker never fires on it — slow legs still complete — so
 *  only the adaptive latency-quantile breaker can eject it. */
FleetConfig
stragglerFleet(RouterPolicy policy, double mult, bool adaptive)
{
    FleetConfig fc;
    for (int i = 0; i < 4; ++i) {
        NodeSpec s;
        s.model = er::model::ModelId::DeepScaleR1_5B;
        fc.nodes.push_back(s);
    }
    fc.server.maxBatch = 8;
    fc.router = policy;
    fc.maxRetries = 3;
    fc.retryBackoff = 0.25;
    fc.healthCooldown = 1e6; // an ejected straggler stays out
    if (mult > 1.0) {
        fc.explicitSchedules.resize(4);
        fc.explicitSchedules[0].slowdowns.push_back({0.0, 1e9, mult});
    }
    if (adaptive) {
        fc.adaptiveHealth = true;
        fc.healthQuantile = 0.95;
        fc.healthLatencyMultiple = 2.0;
    }
    return fc;
}

} // namespace

int
main()
{
    banner("fleet goodput vs node failure rate "
           "(4x DeepScaleR-1.5B on Orin MAXN/50W/30W/15W, 160 "
           "requests, mean 96 in / 256 out, 90 s deadline, retry 3 + "
           "failover)");

    const RouterPolicy policies[4] = {
        RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
        RouterPolicy::DeadlineAware, RouterPolicy::CostAware};

    er::Rng rng(777, "fleet-sweep");
    auto trace = ServingSimulator::poissonTrace(rng, 160, 1.6, 96, 256);
    for (auto &r : trace)
        r.deadline = 90.0;

    er::Table t("");
    t.setHeader({"crashes/h", "policy", "goodput", "hit%", "served",
                 "timed out", "retries", "failovers", "crashes"});
    double best_gain = 0.0;
    double best_rate = 0.0;
    double best_rr = 0.0;
    double best_other = 0.0;
    const char *best_policy = "";
    for (double rate : {0.0, 30.0, 60.0, 120.0}) {
        double rr_goodput = 0.0;
        for (const RouterPolicy p : policies) {
            FleetSimulator sim(siteFleet(p, rate));
            const auto rep = sim.run(trace);

            // Conservation: every arrival reaches exactly one
            // terminal state even while nodes crash mid-decode.
            if (rep.served + rep.timedOut + rep.shed + rep.offloaded !=
                rep.arrivals) {
                std::printf("CONSERVATION VIOLATION at rate %.0f "
                            "policy %s\n",
                            rate, routerPolicyName(p));
                return 1;
            }

            std::uint64_t crashes = 0;
            for (const auto &node : rep.nodes)
                crashes += node.crashes;
            if (p == RouterPolicy::RoundRobin)
                rr_goodput = rep.goodput;
            else if (rate > 0.0 && rep.goodput > rr_goodput) {
                const double gain = rep.goodput - rr_goodput;
                if (gain > best_gain) {
                    best_gain = gain;
                    best_rate = rate;
                    best_rr = rr_goodput;
                    best_other = rep.goodput;
                    best_policy = routerPolicyName(p);
                }
            }
            t.row()
                .cell(rate, 0)
                .cell(routerPolicyName(p))
                .cell(rep.goodput, 4)
                .cell(100.0 * rep.deadlineHitRate, 0)
                .cell(static_cast<long long>(rep.served))
                .cell(static_cast<long long>(rep.timedOut))
                .cell(static_cast<long long>(rep.retries))
                .cell(static_cast<long long>(rep.failovers))
                .cell(static_cast<long long>(crashes));
        }
    }
    t.print(std::cout);

    if (best_gain > 0.0) {
        std::printf("\nrouting wins under failures: at %.0f "
                    "crashes/h, router=%s sustains %.4f goodput vs "
                    "%.4f for round-robin (+%.0f%%)\n",
                    best_rate, best_policy, best_other, best_rr,
                    100.0 * best_gain / std::max(best_rr, 1e-12));
    } else {
        std::printf("\nno routing policy beat round-robin goodput "
                    "under failures -- investigate\n");
    }
    note("every cell above ran the full retry/failover path with the "
         "fleet conservation auditor's terminal-state check; a lost "
         "request fails the bench.");

    banner("straggler sweep: gray node 0 at a latency multiple "
           "(4x DeepScaleR-1.5B homogeneous, same trace), static "
           "consecutive-failure breaker vs quantile-adaptive breaker "
           "(eject when node p95 > 2x fleet median)");

    er::Table st("");
    st.setHeader({"slowdown", "policy", "static goodput",
                  "adaptive goodput", "gain%", "ejections"});
    double worst_gain = 1e300;
    double best_strag_gain = 0.0;
    for (double mult : {1.0, 3.0, 5.0, 8.0}) {
        for (const RouterPolicy p : policies) {
            double goodput[2] = {0.0, 0.0};
            std::uint64_t ejections = 0;
            for (const bool adaptive : {false, true}) {
                FleetSimulator sim(stragglerFleet(p, mult, adaptive));
                const auto rep = sim.run(trace);
                if (rep.served + rep.timedOut + rep.shed +
                        rep.offloaded !=
                    rep.arrivals) {
                    std::printf("CONSERVATION VIOLATION at slowdown "
                                "%.0fx policy %s\n",
                                mult, routerPolicyName(p));
                    return 1;
                }
                goodput[adaptive] = rep.goodput;
                if (adaptive)
                    ejections = rep.adaptiveEjections;
            }
            const double gain =
                100.0 * (goodput[1] - goodput[0]) /
                std::max(goodput[0], 1e-12);
            if (mult > 1.0) {
                worst_gain = std::min(worst_gain, gain);
                best_strag_gain = std::max(best_strag_gain, gain);
            }
            st.row()
                .cell(mult, 0)
                .cell(routerPolicyName(p))
                .cell(goodput[0], 4)
                .cell(goodput[1], 4)
                .cell(gain, 1)
                .cell(static_cast<long long>(ejections));
        }
    }
    st.print(std::cout);

    std::printf("\nadaptive breaker vs static under a straggler: "
                "gain range %.1f%% .. %.1f%% across slowdown x policy "
                "(the static breaker never ejects a gray node; slow "
                "legs still complete, so consecutive failures never "
                "accumulate)\n",
                worst_gain, best_strag_gain);
    note("at extreme slowdowns the straggler's first completions "
         "arrive only after the arrival window closes, so the "
         "quantile has no samples to act on until the rerouting no "
         "longer matters -- the breaker degrades to the static "
         "baseline, never below it.");
    if (best_strag_gain <= 0.0) {
        std::printf("adaptive breaker never beat the static baseline "
                    "under a straggler -- investigate\n");
        return 1;
    }

    banner("fleet-scale Pareto sweep: 10^5 streamed requests per "
           "policy (32x DeepScaleR-1.5B, Orin MAXN/50W/30W/15W "
           "cycled, qps 12.8, mean 96 in / 256 out, 90 s deadline, "
           "12 crashes/h per node, retry 3 + failover; DESIGN.md "
           "S15)");

    // One 10^5-request run per routing policy over the next-stop-
    // indexed event engine, fed by the constant-memory trace stream.
    // Each policy sits somewhere else on the goodput / tail-latency /
    // $-and-J-per-query surface; the table is the Pareto report.
    er::Table pt("");
    pt.setHeader({"policy", "goodput", "hit%", "p99 s", "p99.9 s",
                  "J/query", "$/query", "retries", "events"});
    for (const RouterPolicy p : policies) {
        const er::hw::PowerMode modes[4] = {
            er::hw::PowerMode::MaxN, er::hw::PowerMode::W50,
            er::hw::PowerMode::W30, er::hw::PowerMode::W15};
        FleetConfig fc;
        for (int i = 0; i < 32; ++i) {
            NodeSpec s;
            s.model = er::model::ModelId::DeepScaleR1_5B;
            s.powerMode = modes[i % 4];
            fc.nodes.push_back(s);
        }
        fc.server.maxBatch = 8;
        fc.router = p;
        fc.maxRetries = 3;
        fc.retryBackoff = 0.25;
        fc.nodeFaults.seed = 0xF1EE7;
        fc.nodeFaults.horizon = 100000.0 / 12.8 + 3600.0;
        fc.nodeFaults.crashesPerHour = 12.0;
        fc.nodeFaults.meanRebootSeconds = 20.0;

        er::engine::PoissonTraceStream src(
            777, "fleet-pareto", 100000, 12.8, 96, 256);
        src.setDeadline(90.0);
        FleetSimulator sim(fc);
        const auto rep = sim.runStream(src);

        if (rep.served + rep.timedOut + rep.shed + rep.offloaded !=
            rep.arrivals) {
            std::printf("CONSERVATION VIOLATION in the 10^5 sweep, "
                        "policy %s\n",
                        routerPolicyName(p));
            return 1;
        }
        pt.row()
            .cell(routerPolicyName(p))
            .cell(rep.goodput, 4)
            .cell(100.0 * rep.deadlineHitRate, 1)
            .cell(rep.p99Latency, 2)
            .cell(rep.p999Latency, 2)
            .cell(rep.energyPerQuery, 1)
            .cell(rep.dollarsPerQuery, 6)
            .cell(static_cast<long long>(rep.retries))
            .cell(static_cast<long long>(rep.events));
    }
    pt.print(std::cout);
    note("every policy row is a full 10^5-request run with the "
         "terminal-state conservation check; the trace is streamed, "
         "so trace memory stays O(in-flight) however long the run.");
    return 0;
}
