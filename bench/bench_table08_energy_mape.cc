/**
 * @file
 * Reproduces Table VIII: MAPE of the analytical energy model (power
 * model x latency model composition, Eqns. 4-6) on held-out questions.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "perfmodel/paper_reference.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

int
main()
{
    banner("Table VIII: energy model MAPE");

    er::Table t("");
    t.setHeader({"Model", "Decode", "paper", "Total", "paper"});
    for (ModelId id : er::model::dsr1Family()) {
        const auto &c = facade().characterization(id);
        const auto paper = er::perf::paper::energyMape(id);
        t.row()
            .cell(er::model::modelName(id))
            .cell(er::formatFixed(c.decodeEnergyMapePct, 1) + "%")
            .cell(er::formatFixed(paper->decode, 1) + "%")
            .cell(er::formatFixed(c.totalEnergyMapePct, 1) + "%")
            .cell(er::formatFixed(paper->total, 1) + "%");
    }
    t.print(std::cout);

    note("the paper publishes no prefill energy MAPE (prefill energy "
         "is <1% of the total); decode/total land in the same ~6% "
         "band.");
    return 0;
}
