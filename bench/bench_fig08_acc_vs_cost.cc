/**
 * @file
 * Reproduces Fig. 8: accuracy versus cost per million tokens across
 * budgeting techniques, and Section V-D's price-bracket guidance.
 */

#include <algorithm>

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;

int
main()
{
    banner("Fig. 8: accuracy vs cost (full MMLU-Redux)");

    auto reports = evaluationGrid();
    std::sort(reports.begin(), reports.end(),
              [](const auto &a, const auto &b) {
                  return a.cost.energyPerMTok < b.cost.energyPerMTok;
              });

    er::CsvWriter csv("fig08_acc_vs_cost.csv");
    csv.writeRow(std::vector<std::string>{
        "strategy", "energy_cost_per_mtok", "total_cost_per_mtok",
        "accuracy_pct"});
    er::Table t("");
    t.setHeader({"Strategy", "$/1M (energy)", "$/1M (total)",
                 "Acc. (%)"});
    for (const auto &r : reports) {
        t.row().cell(r.strat.label())
            .cell(r.cost.energyPerMTok, 4)
            .cell(r.cost.totalPerMTok(), 4)
            .cell(r.accuracyPct, 1);
        csv.writeRow(std::vector<std::string>{
            r.strat.label(),
            er::formatFixed(r.cost.energyPerMTok, 5),
            er::formatFixed(r.cost.totalPerMTok(), 5),
            er::formatFixed(r.accuracyPct, 2)});
    }
    t.print(std::cout);

    // Section V-D price brackets (energy-only cost, matching Table X's
    // cost column).
    std::printf("\nprice-bracket winners (energy $/1M tokens):\n");
    const std::pair<double, double> brackets[] = {
        {0.0, 0.01}, {0.01, 0.1}, {0.1, 10.0}};
    for (const auto &[lo, hi] : brackets) {
        const er::core::StrategyReport *best = nullptr;
        for (const auto &r : reports) {
            if (r.cost.energyPerMTok < lo ||
                r.cost.energyPerMTok >= hi)
                continue;
            if (!best || r.accuracyPct > best->accuracyPct)
                best = &r;
        }
        if (best) {
            std::printf("  $%.3f-%.3f: %-28s %5.1f%%\n", lo, hi,
                        best->strat.label().c_str(),
                        best->accuracyPct);
        }
    }

    note("paper guidance: <$0.01 only 1.5B/L1 viable; $0.01-0.1 "
         "non-reasoning optimal; >$0.1 the 8B/14B reasoning models.");
    return 0;
}
