/**
 * @file
 * Reproduces Table IX: inference engine comparison (HF Transformers vs
 * vLLM vs TRT-LLM) on DSR1-Llama-8B across three input/output length
 * combinations.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "engine/engine.hh"
#include "model/calibration.hh"

using namespace benchutil;
namespace er = edgereason;
using er::engine::EngineKind;
using er::model::ModelId;

namespace {

double
latencyFor(EngineKind kind, er::Tokens in, er::Tokens out)
{
    er::engine::EngineConfig cfg;
    cfg.kind = kind;
    cfg.measurementNoise = false;
    er::engine::InferenceEngine eng(
        er::model::spec(ModelId::Dsr1Llama8B),
        er::model::calibration(ModelId::Dsr1Llama8B), cfg);
    return eng.run(in, out).totalSeconds();
}

} // namespace

int
main()
{
    banner("Table IX: inference engine comparison "
           "(DSR1-Llama-8B, latency in s)");

    const struct { er::Tokens in; er::Tokens out; double paper_hf;
                   double paper_vllm; double paper_trt; } rows[] = {
        {16, 128, 14.23, 12.73, 12.79},
        {64, 128, 14.29, 12.75, 12.46},
        {128, 128, 14.41, 12.78, 12.88},
    };

    er::Table t("");
    t.setHeader({"In", "Out", "HF", "paper", "vLLM", "paper",
                 "TRT-LLM", "paper", "vLLM speedup"});
    for (const auto &r : rows) {
        const double hf = latencyFor(EngineKind::HfTransformers, r.in,
                                     r.out);
        const double vllm = latencyFor(EngineKind::Vllm, r.in, r.out);
        const double trt = latencyFor(EngineKind::TrtLlm, r.in, r.out);
        t.row()
            .cell(static_cast<long long>(r.in))
            .cell(static_cast<long long>(r.out))
            .cell(hf, 2).cell(r.paper_hf, 2)
            .cell(vllm, 2).cell(r.paper_vllm, 2)
            .cell(trt, 2).cell(r.paper_trt, 2)
            .cell(er::formatFixed(hf / vllm, 2) + "x");
    }
    t.print(std::cout);

    note("paper: vLLM is 1.11-1.13x faster than HF Transformers and "
         "on par with TRT-LLM.");
    return 0;
}
