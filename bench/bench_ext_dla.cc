/**
 * @file
 * Extension: NVDLA offload what-if (the last suggestion in the
 * paper's Section VI).  The FFN matmuls of the W4A16 models run on
 * the idle DLA complex, overlapped with the GPU — with the shared
 * LPDDR5 bus modelled as a hard floor.  The honest result: decode is
 * bandwidth-bound, so the extra compute buys almost nothing there;
 * compute-bound prefill is where the DLAs help.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "engine/engine.hh"
#include "model/calibration.hh"

using namespace benchutil;
namespace er = edgereason;
using namespace er::engine;
using er::model::ModelId;

namespace {

InferenceEngine
makeEngine(ModelId id, bool dla)
{
    EngineConfig cfg;
    cfg.measurementNoise = false;
    cfg.offloadFfnToDla = dla;
    return InferenceEngine(er::model::quantizedSpec(id),
                           er::model::calibration(id,
                                                  er::DType::W4A16),
                           cfg);
}

} // namespace

int
main()
{
    banner("Extension: NVDLA FFN offload (W4A16 models)");

    er::Table t("");
    t.setHeader({"Model (W4)", "prefill@2048 plain", "w/ DLA",
                 "gain", "TBT@512 plain", "w/ DLA", "gain"});
    for (ModelId id : er::model::dsr1Family()) {
        auto plain = makeEngine(id, false);
        auto dla = makeEngine(id, true);
        const double pf_p = plain.prefillLatency(2048);
        const double pf_d = dla.prefillLatency(2048);
        const double dc_p = plain.decodeStepLatency(512);
        const double dc_d = dla.decodeStepLatency(512);
        t.row()
            .cell(er::model::modelName(id))
            .cell(pf_p, 3)
            .cell(pf_d, 3)
            .cell(er::formatFixed(100.0 * (pf_p / pf_d - 1.0), 1) +
                  "%")
            .cell(dc_p * 1e3, 2)
            .cell(dc_d * 1e3, 2)
            .cell(er::formatFixed(100.0 * (dc_p / dc_d - 1.0), 1) +
                  "%");
    }
    t.print(std::cout);

    note("prefill (compute-bound) gains 11-21% from the extra 52.5 "
         "TOPS; the engine deliberately keeps decode FFN on the GPU — "
         "offloading it regresses TBT 23-36% because the DLA's "
         "narrower DRAM interface slows weight streaming.  Section "
         "VI's DLA idea therefore helps prefill-heavy workloads "
         "only.");
    return 0;
}
