/**
 * @file
 * Reproduces Tables XIII-XV: the Natural-Plan planning benchmark
 * (calendar scheduling, meeting planning, trip planning) under
 * baseline reasoning, NR + 512-token budgeting, and direct
 * (non-reasoning) models.  Latency columns are measured on the Orin
 * simulator; the paper's appendix latencies were collected on a server
 * GPU (see EXPERIMENTS.md).
 */

#include "bench_util.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;
using er::acc::Dataset;
using er::model::ModelId;
using er::strategy::TokenPolicy;

namespace {

const char *
taskName(Dataset d)
{
    switch (d) {
      case Dataset::NaturalPlanCalendar:
        return "calendar";
      case Dataset::NaturalPlanMeeting:
        return "meeting";
      case Dataset::NaturalPlanTrip:
        return "trip";
      default:
        return "?";
    }
}

} // namespace

int
main()
{
    const Dataset tasks[] = {Dataset::NaturalPlanCalendar,
                             Dataset::NaturalPlanMeeting,
                             Dataset::NaturalPlanTrip};

    banner("Table XIII: Natural-Plan baseline (reasoning models)");
    {
        // Paper accuracy / token anchors per task x model.
        const double pAcc[3][3] = {{0.60, 9.00, 11.70},
                                   {1.00, 10.00, 19.30},
                                   {1.25, 7.88, 13.88}};
        const double pTok[3][3] = {{2792, 2798, 2297},
                                   {3880, 2866, 1494},
                                   {2490, 2251, 2340}};
        er::Table t("");
        t.setHeader({"Task", "Model", "Acc(%)", "paper", "toks/Q",
                     "paper", "Orin lat (s)"});
        int ti = 0;
        for (Dataset d : tasks) {
            int mi = 0;
            for (ModelId id : er::model::dsr1Family()) {
                const auto rep = facade().evaluate(
                    mk(id, TokenPolicy::base()), d);
                t.row()
                    .cell(taskName(d))
                    .cell(er::model::modelName(id))
                    .cell(rep.accuracyPct, 2).cell(pAcc[ti][mi], 2)
                    .cell(rep.avgTokens, 0).cell(pTok[ti][mi], 0)
                    .cell(rep.avgLatency, 1);
                ++mi;
            }
            ++ti;
        }
        t.print(std::cout);
    }

    banner("Table XIV: Natural-Plan budgeting (NR + hard limit at "
           "512 tokens)");
    {
        const double pAcc[3][3] = {{2.00, 8.10, 12.60},
                                   {1.90, 11.90, 19.00},
                                   {0.00, 3.90, 10.90}};
        const double pTok[3][3] = {{511, 67, 40},
                                   {425, 284, 341},
                                   {507, 398, 380}};
        er::Table t("");
        t.setHeader({"Task", "Model", "Acc(%)", "paper", "toks/Q",
                     "paper", "Orin lat (s)"});
        int ti = 0;
        for (Dataset d : tasks) {
            int mi = 0;
            for (ModelId id : er::model::dsr1Family()) {
                const auto rep = facade().evaluate(
                    mk(id, TokenPolicy::hard(512)), d);
                t.row()
                    .cell(taskName(d))
                    .cell(er::model::modelName(id))
                    .cell(rep.accuracyPct, 2).cell(pAcc[ti][mi], 2)
                    .cell(rep.avgTokens, 0).cell(pTok[ti][mi], 0)
                    .cell(rep.avgLatency, 1);
                ++mi;
            }
            ++ti;
        }
        t.print(std::cout);
    }

    banner("Table XV: Natural-Plan direct models (Qwen2.5)");
    {
        const ModelId direct[] = {ModelId::Qwen25_1_5BIt,
                                  ModelId::Qwen25_14BIt};
        const double pAcc[3][2] = {{5.30, 31.90},
                                   {9.40, 27.20},
                                   {2.50, 6.44}};
        er::Table t("");
        t.setHeader({"Task", "Model", "Acc(%)", "paper", "toks/Q",
                     "Orin lat (s)"});
        int ti = 0;
        for (Dataset d : tasks) {
            int mi = 0;
            for (ModelId id : direct) {
                const auto rep = facade().evaluate(
                    mk(id, TokenPolicy::base()), d);
                t.row()
                    .cell(taskName(d))
                    .cell(er::model::modelName(id))
                    .cell(rep.accuracyPct, 2).cell(pAcc[ti][mi], 2)
                    .cell(rep.avgTokens, 0)
                    .cell(rep.avgLatency, 2);
                ++mi;
            }
            ++ti;
        }
        t.print(std::cout);
    }

    note("planning is brutal for small reasoning models (<2% "
         "accuracy); budgeting to 512 tokens barely hurts, and the "
         "direct 14B dominates on calendar/meeting tasks.");
    return 0;
}
