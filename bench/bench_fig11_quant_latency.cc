/**
 * @file
 * Reproduces Fig. 11: prefill (left) and decode (right) latency as a
 * function of sequence length for the W4A16-quantized models, compared
 * against their FP16 counterparts (Figs. 2-3).
 */

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

int
main()
{
    banner("Fig. 11: quantized (W4A16) prefill and decode latency");

    er::CsvWriter csv("fig11_quant_latency.csv");
    csv.writeRow(std::vector<std::string>{
        "model", "phase", "length", "fp16_s", "w4_s"});

    er::Table pf("prefill latency (s)");
    pf.setHeader({"Model", "I=512 fp16", "I=512 W4", "I=2048 fp16",
                  "I=2048 W4", "speedup@2048"});
    er::Table dc("decode latency for O tokens at I=512 (s)");
    dc.setHeader({"Model", "O=256 fp16", "O=256 W4", "O=1024 fp16",
                  "O=1024 W4", "speedup@1024"});

    for (ModelId id : er::model::dsr1Family()) {
        auto &fp16 = facade().registry().engineFor(id, false);
        auto &w4 = facade().registry().engineFor(id, true);

        for (er::Tokens i : {128, 256, 512, 1024, 2048, 4096}) {
            csv.writeRow(std::vector<std::string>{
                er::model::modelName(id), "prefill", std::to_string(i),
                er::formatFixed(fp16.prefillLatency(i), 5),
                er::formatFixed(w4.prefillLatency(i), 5)});
        }
        const auto &mf = facade().characterization(id).latency;
        const auto &mq =
            facade().registry().perfFor(id, true).latency;
        for (er::Tokens o : {128, 256, 512, 1024, 2048}) {
            csv.writeRow(std::vector<std::string>{
                er::model::modelName(id), "decode", std::to_string(o),
                er::formatFixed(mf.decode(512, o), 4),
                er::formatFixed(mq.decode(512, o), 4)});
        }

        pf.row()
            .cell(er::model::modelName(id))
            .cell(fp16.prefillLatency(512), 3)
            .cell(w4.prefillLatency(512), 3)
            .cell(fp16.prefillLatency(2048), 3)
            .cell(w4.prefillLatency(2048), 3)
            .cell(er::formatFixed(fp16.prefillLatency(2048) /
                                      w4.prefillLatency(2048), 2) +
                  "x");
        dc.row()
            .cell(er::model::modelName(id))
            .cell(mf.decode(512, 256), 2)
            .cell(mq.decode(512, 256), 2)
            .cell(mf.decode(512, 1024), 2)
            .cell(mq.decode(512, 1024), 2)
            .cell(er::formatFixed(mf.decode(512, 1024) /
                                      mq.decode(512, 1024), 2) +
                  "x");
    }
    pf.print(std::cout);
    std::printf("\n");
    dc.print(std::cout);

    note("quantized models have shorter prefill and decode at every "
         "length; decode speedup tracks the 4x weight shrink derated "
         "by dequantization overhead (Section V-F).");
    return 0;
}
