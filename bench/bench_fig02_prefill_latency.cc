/**
 * @file
 * Reproduces Fig. 2 and Table IV: prefill latency versus input length
 * for the three DSR1 models, the stepped tensor-core padding pattern,
 * and the fitted quadratic coefficients of Eqn. 1.  Series are also
 * exported to fig02_prefill_latency.csv for replotting.
 */

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/table.hh"
#include "perfmodel/characterize.hh"
#include "perfmodel/paper_reference.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

int
main()
{
    banner("Fig. 2 / Table IV: prefill latency vs input length");

    er::CsvWriter csv("fig02_prefill_latency.csv");
    csv.writeRow(std::vector<std::string>{
        "model", "input_tokens", "measured_s", "fitted_s"});

    er::Table coeffs("Table IV: fitted prefill latency coefficients "
                     "L = a*Ipad^2 + b*Ipad + c");
    coeffs.setHeader({"Model", "a", "a(paper)", "b", "b(paper)", "c",
                      "c(paper)"});

    for (ModelId id : er::model::dsr1Family()) {
        auto &eng = facade().registry().engineFor(id, false);
        er::perf::SweepConfig cfg;
        const auto sweep = er::perf::sweepPrefill(eng, cfg);
        const auto fit = er::perf::fitPrefill(sweep.latency);
        for (const auto &s : sweep.latency) {
            csv.writeRow(std::vector<std::string>{
                er::model::modelName(id),
                std::to_string(s.inputTokens),
                er::formatFixed(s.latency, 6),
                er::formatFixed(fit(s.inputTokens), 6)});
        }
        const auto paper = er::perf::paper::prefillLatency(id);
        coeffs.row()
            .cell(er::model::modelName(id))
            .cellSci(fit.a).cellSci(paper->a)
            .cellSci(fit.b).cellSci(paper->b)
            .cell(fit.c, 3).cell(paper->c, 3);
    }
    coeffs.print(std::cout);

    // Show the stepped pattern explicitly around one tile boundary.
    auto &eng14 = facade().registry().engineFor(ModelId::Dsr1Qwen14B,
                                                false);
    std::printf("\nstepped pattern (DSR1-Qwen-14B, noiseless):\n");
    for (er::Tokens i : {2049, 2112, 2176, 2177, 2240, 2304, 2305}) {
        std::printf("  I=%5lld  L=%.4f s\n",
                    static_cast<long long>(i), eng14.prefillLatency(i));
    }

    note("the quadratic term a is physical (FP32 attention path) and "
         "lands within ~15% of Table IV; b/c trade off against each "
         "other in the fit exactly as in the paper (see "
         "EXPERIMENTS.md).");
    return 0;
}
