# One binary per reproduced table/figure plus google-benchmark
# micro-benchmarks of the simulator itself.
#
# Included from the top-level CMakeLists (rather than added as a
# subdirectory) so that ${CMAKE_BINARY_DIR}/bench contains only the
# bench executables and `for b in build/bench/*; do $b; done` runs the
# whole harness cleanly.

file(GLOB BENCH_SOURCES CONFIGURE_DEPENDS
    ${CMAKE_CURRENT_LIST_DIR}/*.cc)

foreach(src ${BENCH_SOURCES})
    get_filename_component(name ${src} NAME_WE)
    add_executable(${name} ${src})
    target_link_libraries(${name} PRIVATE edgereason
        benchmark::benchmark)
    target_include_directories(${name} PRIVATE ${CMAKE_CURRENT_LIST_DIR})
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()
