/**
 * @file
 * Reproduces Fig. 9: accuracy versus parallel scaling factor under
 * 128-token (a) and 512-token (b) output budgets on full MMLU-Redux,
 * with majority voting across parallel decoders.
 */

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;
using er::strategy::TokenPolicy;

int
main()
{
    banner("Fig. 9: accuracy vs parallel scaling factor");

    const int factors[] = {1, 2, 4, 8, 16, 32};
    const struct
    {
        ModelId id;
        bool l1;
    } models[] = {
        {ModelId::Dsr1Qwen1_5B, false},
        {ModelId::Dsr1Llama8B, false},
        {ModelId::Dsr1Qwen14B, false},
        {ModelId::L1Max, true},
    };

    er::CsvWriter csv("fig09_parallel_accuracy.csv");
    csv.writeRow(std::vector<std::string>{
        "budget", "model", "scaling_factor", "accuracy_pct"});

    for (er::Tokens budget : {128, 512}) {
        std::printf("\n(%s) output budget = %lld tokens\n",
                    budget == 128 ? "a" : "b",
                    static_cast<long long>(budget));
        er::Table t("");
        std::vector<std::string> header = {"Model"};
        for (int f : factors)
            header.push_back("SF=" + std::to_string(f));
        header.push_back("gain@32");
        t.setHeader(header);

        for (const auto &m : models) {
            const auto pol = m.l1 ? TokenPolicy::l1(budget)
                                  : TokenPolicy::hard(budget);
            t.row().cell(er::model::modelName(m.id));
            double first = 0.0, last = 0.0;
            for (int f : factors) {
                const auto rep = facade().evaluate(
                    mk(m.id, pol, f), er::acc::Dataset::MmluRedux);
                if (f == 1)
                    first = rep.accuracyPct;
                last = rep.accuracyPct;
                t.cell(rep.accuracyPct, 1);
                csv.writeRow(std::vector<std::string>{
                    std::to_string(budget),
                    er::model::modelName(m.id), std::to_string(f),
                    er::formatFixed(rep.accuracyPct, 2)});
            }
            t.cell(er::formatFixed(last / first, 2) + "x");
        }
        t.print(std::cout);
    }

    note("paper: 1.5-1.8x gains at the 128-token budget by SF=32; "
         "gains plateau after ~4x at 512 tokens; L1 variants gain "
         "little; small models degrade near SF=16 (Takeaway #9).");
    return 0;
}
