/**
 * @file
 * Reproduces Fig. 6: accuracy versus average output length across
 * budgeting techniques on MMLU-Redux, including the crossover examples
 * called out in Section V-A (8B Base vs 14B 128T, 8B Base vs 14B
 * 256-NC).
 */

#include <algorithm>

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;

int
main()
{
    banner("Fig. 6: accuracy vs average output length "
           "(full MMLU-Redux)");

    auto reports = evaluationGrid();
    std::sort(reports.begin(), reports.end(),
              [](const auto &a, const auto &b) {
                  return a.avgTokens < b.avgTokens;
              });

    er::CsvWriter csv("fig06_acc_vs_tokens.csv");
    csv.writeRow(std::vector<std::string>{
        "strategy", "avg_tokens", "accuracy_pct"});

    er::Table t("");
    t.setHeader({"Strategy", "Avg toks/Q", "Acc. (%)"});
    for (const auto &r : reports) {
        t.row()
            .cell(r.strat.label())
            .cell(r.avgTokens, 1)
            .cell(r.accuracyPct, 1);
        csv.writeRow(std::vector<std::string>{
            r.strat.label(), er::formatFixed(r.avgTokens, 1),
            er::formatFixed(r.accuracyPct, 2)});
    }
    t.print(std::cout);

    // The two crossovers discussed in the paper.
    auto find = [&](const std::string &label)
        -> const er::core::StrategyReport & {
        for (const auto &r : reports) {
            if (r.strat.label() == label)
                return r;
        }
        throw std::runtime_error("missing strategy " + label);
    };
    const auto &base8 = find("DSR1-Llama-8B Base");
    const auto &hard14 = find("DSR1-Qwen-14B 128T");
    const auto &soft14 = find("DSR1-Qwen-14B 256 (NC)");
    std::printf("\ncrossovers (Section V-A):\n");
    std::printf("  8B Base (%.0f toks, %.1f%%) vs 14B 128T "
                "(%.0f toks, %.1f%%): reasoning depth compensates "
                "scale -> 8B wins: %s (paper: yes)\n",
                base8.avgTokens, base8.accuracyPct, hard14.avgTokens,
                hard14.accuracyPct,
                base8.accuracyPct > hard14.accuracyPct ? "yes" : "no");
    std::printf("  8B Base vs 14B 256-NC (%.0f toks, %.1f%%): scale "
                "compensates depth -> 14B wins: %s (paper: yes)\n",
                soft14.avgTokens, soft14.accuracyPct,
                soft14.accuracyPct > base8.accuracyPct ? "yes" : "no");

    note("Takeaways #5 and #7: prompt-based control shrinks outputs; "
         "accuracy rises with output length with diminishing returns.");
    return 0;
}
