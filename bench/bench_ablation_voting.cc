/**
 * @file
 * Ablation: force the parallel-sample correlation to rho = 1 (all
 * samples identical) and show that the Fig. 9 voting gains vanish —
 * the gains are a property of sample diversity, not of the vote
 * mechanism itself.
 */

#include "bench_util.hh"
#include "accuracy/simulate.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;
using er::strategy::TokenPolicy;

int
main()
{
    banner("Ablation: sample correlation in parallel voting "
           "(DSR1-Qwen-14B, 128T, full MMLU-Redux)");

    er::acc::QuestionBank bank(er::acc::Dataset::MmluRedux, 99);
    const er::acc::ResponseProfile prof(ModelId::Dsr1Qwen14B,
                                        er::acc::Dataset::MmluRedux,
                                        false);

    er::Table t("");
    t.setHeader({"rho", "SF=1", "SF=4", "SF=16", "SF=32", "gain@32"});
    for (double rho : {prof.sampleCorrelation(), 0.0, 0.7, 1.0}) {
        t.row().cell(rho, 2);
        double first = 0.0, last = 0.0;
        for (int f : {1, 4, 16, 32}) {
            er::acc::ResponseSimulator sim(prof, 777);
            sim.overrideCorrelation(rho);
            const double acc = sim.evaluate(bank.questions(),
                                            TokenPolicy::hard(128), f)
                                   .accuracyPct;
            if (f == 1)
                first = acc;
            last = acc;
            t.cell(acc, 1);
        }
        t.cell(er::formatFixed(last / first, 2) + "x");
    }
    t.print(std::cout);

    note("rho=1 erases voting gains entirely; rho=0 overshoots the "
         "paper's 1.5-1.8x band; the calibrated rho reproduces it.");
    return 0;
}
