/**
 * @file
 * Reproduces Fig. 10: parallel scaling on the Orin — (a) decode
 * latency, (b) energy per question, and (c) average power plus GPU
 * utilization versus scaling factor, at a fixed 128-token output
 * budget with single prefill (Section V-E protocol).
 */

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

int
main()
{
    banner("Fig. 10: parallel scaling — latency, energy, power, "
           "utilization");

    const int factors[] = {1, 2, 4, 8, 16, 32, 64};
    er::CsvWriter csv("fig10_parallel_scaling.csv");
    csv.writeRow(std::vector<std::string>{
        "model", "scaling_factor", "decode_latency_s",
        "energy_per_question_j", "avg_power_w", "bw_util",
        "compute_util"});

    for (ModelId id : er::model::dsr1Family()) {
        auto &eng = facade().registry().engineFor(id, false);
        er::Table t(std::string(er::model::modelName(id)) +
                    " (I=512, O=128, prefill at batch 1)");
        t.setHeader({"SF", "decode (s)", "vs SF=1", "energy/Q (J)",
                     "power (W)", "DRAM util", "compute util"});
        double base_lat = 0.0;
        for (int f : factors) {
            const auto r = eng.run(512, 128, f);
            if (f == 1)
                base_lat = r.decode.seconds;
            t.row()
                .cell(static_cast<long long>(f))
                .cell(r.decode.seconds, 2)
                .cell(er::formatFixed(r.decode.seconds / base_lat, 2) +
                      "x")
                .cell(r.totalEnergy(), 1)
                .cell(r.decode.avgPower, 1)
                .cell(er::formatFixed(100.0 * r.decode.bwUtil, 0) + "%")
                .cell(er::formatFixed(100.0 * r.decode.computeUtil, 1) +
                      "%");
            csv.writeRow(std::vector<std::string>{
                er::model::modelName(id), std::to_string(f),
                er::formatFixed(r.decode.seconds, 4),
                er::formatFixed(r.totalEnergy(), 2),
                er::formatFixed(r.decode.avgPower, 2),
                er::formatFixed(r.decode.bwUtil, 4),
                er::formatFixed(r.decode.computeUtil, 4)});
        }
        t.print(std::cout);
    }

    note("paper: ~2x decode latency from SF=1 to 64; power rises "
         "14->25 W (1.5B) and ~25->35 W (8B/14B); energy/question "
         "grows <1.5x to SF=4 and ~2x by SF=16 on the 14B "
         "(Takeaways #9/#10).");
    return 0;
}
