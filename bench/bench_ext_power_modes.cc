/**
 * @file
 * Extension: the Orin's configurable power envelopes (Section IV-B
 * lists 15 W / 30 W / 50 W / MAXN but the paper only measures MAXN).
 * This study sweeps the modes and reports the latency/energy tradeoff
 * per request, identifying the energy-optimal mode per model.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "engine/engine.hh"
#include "model/calibration.hh"

using namespace benchutil;
namespace er = edgereason;
using namespace er::engine;
using er::hw::PowerMode;
using er::model::ModelId;

int
main()
{
    banner("Extension: power-mode sweep (I=170, O=512 per request)");

    for (ModelId id : er::model::dsr1Family()) {
        er::Table t(er::model::modelName(id));
        t.setHeader({"mode", "latency (s)", "vs MAXN", "avg power (W)",
                     "energy (J)", "vs MAXN"});
        double maxn_lat = 0.0, maxn_e = 0.0;
        for (PowerMode mode : {PowerMode::MaxN, PowerMode::W50,
                               PowerMode::W30, PowerMode::W15}) {
            EngineConfig cfg;
            cfg.powerMode = mode;
            cfg.measurementNoise = false;
            InferenceEngine eng(er::model::spec(id),
                                er::model::calibration(id), cfg);
            const auto r = eng.run(170, 512);
            if (mode == PowerMode::MaxN) {
                maxn_lat = r.totalSeconds();
                maxn_e = r.totalEnergy();
            }
            t.row()
                .cell(er::hw::powerModeName(mode))
                .cell(r.totalSeconds(), 1)
                .cell(er::formatFixed(r.totalSeconds() / maxn_lat, 2) +
                      "x")
                .cell(r.totalEnergy() / r.totalSeconds(), 1)
                .cell(r.totalEnergy(), 1)
                .cell(er::formatFixed(r.totalEnergy() / maxn_e, 2) +
                      "x");
        }
        t.print(std::cout);
        std::printf("\n");
    }

    note("capped modes slow decode roughly in proportion to the "
         "memory-clock cut, but DVFS shrinks dynamic power "
         "superlinearly, so 30-50 W modes are 8-16% more "
         "energy-efficient per request — MAXN buys latency, capped "
         "modes buy battery, and the planner can trade between them "
         "when deadlines have slack.");
    return 0;
}
