/**
 * @file
 * Reproduces Fig. 3 and Table V: (a) decode latency versus output
 * length at a fixed 512-token input, and (b) time-between-tokens
 * versus input length; plus the fitted Eqn. 2 coefficients.
 */

#include "bench_util.hh"
#include "common/csv.hh"
#include "common/table.hh"
#include "perfmodel/characterize.hh"
#include "perfmodel/paper_reference.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

int
main()
{
    banner("Fig. 3 / Table V: decode latency and TBT");

    er::CsvWriter csv("fig03_decode_latency.csv");
    csv.writeRow(std::vector<std::string>{
        "model", "output_tokens", "decode_s"});

    er::Table coeffs("Table V: fitted decode latency coefficients "
                     "TBT = m*I + n");
    coeffs.setHeader({"Model", "m", "m(paper)", "n", "n(paper)"});

    for (ModelId id : er::model::dsr1Family()) {
        auto &eng = facade().registry().engineFor(id, false);
        er::perf::SweepConfig cfg;
        const auto sweep = er::perf::sweepDecode(eng, cfg);
        for (const auto &s : sweep.latency) {
            csv.writeRow(std::vector<std::string>{
                er::model::modelName(id),
                std::to_string(s.outputTokens),
                er::formatFixed(s.latency, 5)});
        }
        const auto &fit = facade().characterization(id).latency.decode;
        const auto paper = er::perf::paper::decodeLatency(id);
        coeffs.row()
            .cell(er::model::modelName(id))
            .cellSci(fit.m).cellSci(paper->m)
            .cell(fit.n, 4).cell(paper->n, 4);
    }
    coeffs.print(std::cout);

    // Fig. 3b: TBT vs input length for DSR1-Llama-8B.
    std::printf("\nFig. 3b: TBT vs input length (DSR1-Llama-8B):\n");
    auto &eng8 = facade().registry().engineFor(ModelId::Dsr1Llama8B,
                                               false);
    const auto tbt = er::perf::tbtVsInputLength(
        eng8, {1, 512, 1024, 2048, 3072, 4096});
    const double t0 = tbt.front().second;
    for (const auto &[i, t] : tbt) {
        std::printf("  I=%5lld  TBT=%.4f s  (+%.1f%%)\n",
                    static_cast<long long>(i), t,
                    100.0 * (t / t0 - 1.0));
    }

    note("paper reports +3.1% TBT from I=1 to 4k on the 8B and TBT of "
         "0.024/0.092-0.10/0.186 s; Table V's published n=0.010 for "
         "the 8B contradicts the paper's own text (known typo).");
    return 0;
}
