/**
 * @file
 * Reproduces Table VII: prefill-to-decode token and latency ratios over
 * the full MMLU-Redux benchmark for the three DSR1 models.
 */

#include "bench_util.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;
using er::acc::Dataset;
using er::model::ModelId;
using er::strategy::TokenPolicy;

int
main()
{
    banner("Table VII: prefill-to-decode ratios (full MMLU-Redux)");

    const double paper_tok[] = {7.3, 2.4, 7.1};
    const double paper_lat[] = {521, 192, 569};

    er::Table t("");
    t.setHeader({"Model", "P:D tokens", "paper", "P:D latency",
                 "paper"});
    int row = 0;
    for (ModelId id : er::model::dsr1Family()) {
        auto &ev = facade().evaluator();
        const auto &prof = ev.profile(id, Dataset::MmluRedux, false);
        const auto &bank = ev.bank(Dataset::MmluRedux);
        const auto &pm = facade().characterization(id);

        double tok_in = 0.0, tok_out = 0.0, lat_pf = 0.0, lat_dc = 0.0;
        const double mean_out = prof.meanTokens(TokenPolicy::base());
        for (const auto &q : bank.questions()) {
            tok_in += static_cast<double>(q.promptTokens);
            tok_out += mean_out;
            lat_pf += pm.latency.prefill(q.promptTokens);
            lat_dc += pm.latency.decode(q.promptTokens,
                                        static_cast<er::Tokens>(
                                            mean_out));
        }
        t.row()
            .cell(er::model::modelName(id))
            .cell("1:" + er::formatFixed(tok_out / tok_in, 1))
            .cell("1:" + er::formatFixed(paper_tok[row], 1))
            .cell("1:" + er::formatFixed(lat_dc / lat_pf, 0))
            .cell("1:" + er::formatFixed(paper_lat[row], 0));
        ++row;
    }
    t.print(std::cout);

    note("Takeaway #2: decode dominates (>99.5% of inference time); "
         "token ratios follow each model's verbosity.");
    return 0;
}
