/**
 * @file
 * Reproduces Tables XX-XXIII (Appendix E): fitted coefficients of the
 * prefill/decode power and energy models for the FP16 and W4A16
 * variants, produced by the same sweep-and-fit pipeline as the paper's
 * token2metrics module.
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "perfmodel/paper_reference.hh"

using namespace benchutil;
namespace er = edgereason;
using er::model::ModelId;

namespace {

void
printFor(bool quant)
{
    er::Table pw(quant
        ? "Table XXII-flavoured: prefill power/energy fits (W4A16)"
        : "Table XX-flavoured: prefill power/energy fits (fp16)");
    pw.setHeader({"Model", "power form", "u/alpha", "beta", "break v",
                  "energy form", "E params"});
    er::Table dc(quant
        ? "Table XXIII-flavoured: decode power/energy fits (W4A16)"
        : "Table XXI-flavoured: decode power/energy fits (fp16)");
    dc.setHeader({"Model", "floor (W)", "y (ln O)", "z",
                  "E/tok form", "E params"});

    for (ModelId id : er::model::dsr1Family()) {
        const auto &c = facade().registry().perfFor(id, quant);
        {
            const auto &p = c.prefillPower;
            const auto &e = c.prefillEnergy;
            std::string eform, eparams;
            if (e.ve > 0) {
                eform = "exp<=v, log>v";
                eparams = "A=" + er::formatSci(e.head.a, 2) +
                    " l=" + er::formatSci(e.head.lambda, 2) +
                    " a=" + er::formatSci(e.tail.alpha, 2);
            } else {
                eform = "exp decay";
                eparams = "A=" + er::formatSci(e.head.a, 2) +
                    " l=" + er::formatSci(e.head.lambda, 2) +
                    " C=" + er::formatSci(e.head.c, 2);
            }
            pw.row()
                .cell(er::model::modelName(id))
                .cell(p.v > 0 ? "const+log" : "const")
                .cell(p.v > 0 ? p.w : p.u, 2)
                .cell(p.v > 0 ? p.x : 0.0, 2)
                .cell(static_cast<long long>(p.v))
                .cell(eform)
                .cell(eparams);
        }
        {
            const auto &p = c.decodePower;
            const auto &e = c.decodeEnergy;
            std::string eparams;
            if (e.ve > 0) {
                eparams = "log: a=" + er::formatFixed(e.tail.alpha, 4) +
                    " b=" + er::formatFixed(e.tail.beta, 4);
            } else {
                eparams = "exp: A=" + er::formatSci(e.head.a, 2) +
                    " C=" + er::formatSci(e.head.c, 2);
            }
            dc.row()
                .cell(er::model::modelName(id))
                .cell(p.floor, 2)
                .cell(p.y, 3)
                .cell(p.z, 3)
                .cell(e.ve > 0 ? "exp+log" : "exp decay")
                .cell(eparams);
        }
    }
    pw.print(std::cout);
    std::printf("\n");
    dc.print(std::cout);
    std::printf("\n");
}

} // namespace

int
main()
{
    banner("Tables XX-XXIII: fitted power and energy model "
           "coefficients");
    printFor(false);
    printFor(true);

    // Reference values for comparison.
    std::printf("paper reference (fp16 prefill power): 1.5B const "
                "5.636 W; 8B log w/ v=800; 14B log w/ v=384.\n");
    note("the paper's decode power/energy appendix coefficients "
         "(Table XXI) are internally inconsistent with its Table XIX "
         "averages; our fits follow the measured sweeps (see "
         "EXPERIMENTS.md).");
    return 0;
}
