/**
 * @file
 * Reproduces Fig. 14: quantized vs FP16 models on MMLU-Redux —
 * accuracy deltas, average output tokens, and average latency.
 */

#include "bench_util.hh"
#include "common/table.hh"

using namespace benchutil;
namespace er = edgereason;
using er::acc::Dataset;
using er::model::ModelId;
using er::strategy::TokenPolicy;

int
main()
{
    banner("Fig. 14: quantized vs FP16 accuracy / tokens / latency "
           "(full MMLU-Redux)");

    const double paper_rel_loss[] = {-1.04, -6.16, -0.62};

    er::Table t("");
    t.setHeader({"Model", "Acc fp16", "Acc W4", "rel. loss",
                 "paper", "toks fp16", "toks W4", "lat fp16 (s)",
                 "lat W4 (s)", "speedup"});
    int row = 0;
    for (ModelId id : er::model::dsr1Family()) {
        const auto fp16 = facade().evaluate(
            mk(id, TokenPolicy::base()), Dataset::MmluRedux);
        const auto w4 = facade().evaluate(
            mk(id, TokenPolicy::base(), 1, true), Dataset::MmluRedux);
        const double rel =
            100.0 * (w4.accuracyPct - fp16.accuracyPct) /
            fp16.accuracyPct;
        t.row()
            .cell(er::model::modelName(id))
            .cell(fp16.accuracyPct, 1)
            .cell(w4.accuracyPct, 1)
            .cell(er::formatFixed(rel, 2) + "%")
            .cell(er::formatFixed(paper_rel_loss[row++], 2) + "%")
            .cell(fp16.avgTokens, 0)
            .cell(w4.avgTokens, 0)
            .cell(fp16.avgLatency, 1)
            .cell(w4.avgLatency, 1)
            .cell(er::formatFixed(fp16.avgLatency / w4.avgLatency, 1) +
                  "x");
    }
    t.print(std::cout);

    note("Takeaway #11: AWQ W4 costs ~1-6% relative accuracy, emits "
         "fewer tokens, and improves latency ~2-5x with larger models "
         "benefiting more.");
    return 0;
}
