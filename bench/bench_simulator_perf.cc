/**
 * @file
 * google-benchmark micro-benchmarks of the simulator itself: kernel
 * enumeration, roofline execution, full request simulation, the
 * characterization pipeline's question runs, and the Monte-Carlo
 * accuracy evaluator.  These guard against performance regressions in
 * the infrastructure (a full Table XI regeneration runs ~60 strategy
 * evaluations over 3,000 questions each).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>

#include "accuracy/simulate.hh"
#include "accuracy/trace_gen.hh"
#include "common/thread_pool.hh"
#include "core/edge_reasoning.hh"
#include "core/pareto.hh"
#include "engine/engine.hh"
#include "engine/server.hh"
#include "fleet/fleet.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using er::model::ModelId;

namespace {

er::engine::InferenceEngine &
sharedEngine()
{
    static er::engine::InferenceEngine eng = [] {
        er::engine::EngineConfig cfg;
        cfg.measurementNoise = false;
        return er::engine::InferenceEngine(
            er::model::spec(ModelId::Dsr1Llama8B),
            er::model::calibration(ModelId::Dsr1Llama8B), cfg);
    }();
    return eng;
}

void
BM_KernelEnumeration(benchmark::State &state)
{
    const auto spec = er::model::spec(ModelId::Dsr1Llama8B);
    for (auto _ : state) {
        auto ks = er::engine::decodeKernels(spec, 1024, 4);
        benchmark::DoNotOptimize(ks);
    }
}
BENCHMARK(BM_KernelEnumeration);

void
BM_DecodeStepLatency(benchmark::State &state)
{
    auto &eng = sharedEngine();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            eng.decodeStepLatency(static_cast<er::Tokens>(
                state.range(0))));
    }
}
BENCHMARK(BM_DecodeStepLatency)->Arg(512)->Arg(4096);

void
BM_FullRequest(benchmark::State &state)
{
    auto &eng = sharedEngine();
    for (auto _ : state) {
        auto r = eng.run(170, static_cast<er::Tokens>(state.range(0)));
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_FullRequest)->Arg(128)->Arg(1024);

void
BM_PrefillSweepPoint(benchmark::State &state)
{
    auto &eng = sharedEngine();
    for (auto _ : state) {
        auto m = eng.prefillOnly(2048);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_PrefillSweepPoint);

void
BM_AccuracyEvaluation(benchmark::State &state)
{
    static er::acc::QuestionBank bank(er::acc::Dataset::MmluRedux, 99);
    static const er::acc::ResponseProfile prof(
        ModelId::Dsr1Llama8B, er::acc::Dataset::MmluRedux, false);
    er::acc::ResponseSimulator sim(prof, 1);
    const auto sub = bank.subset(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto ev = sim.evaluate(sub, er::strategy::TokenPolicy::base(),
                               static_cast<int>(state.range(1)));
        benchmark::DoNotOptimize(ev);
    }
    state.SetItemsProcessed(state.iterations() *
                            state.range(0) * state.range(1));
}
BENCHMARK(BM_AccuracyEvaluation)
    ->Args({1000, 1})
    ->Args({1000, 8})
    ->Args({3000, 1});

void
BM_KernelCacheHit(benchmark::State &state)
{
    // Steady-state decode-step cost with the (context, batch) memo
    // cache warm — this is the path the parallel sweeps hammer.
    auto &eng = sharedEngine();
    benchmark::DoNotOptimize(eng.decodeStepLatency(1024, 4));
    for (auto _ : state)
        benchmark::DoNotOptimize(eng.decodeStepLatency(1024, 4));
    const auto stats = eng.kernelCacheStats();
    state.counters["hit_rate"] =
        static_cast<double>(stats.hits) /
        static_cast<double>(stats.hits + stats.misses);
}
BENCHMARK(BM_KernelCacheHit);

void
BM_ParallelSweep(benchmark::State &state)
{
    // Thread-scaling benchmark of one strategy evaluation's inner
    // question fan-out.  The earlier version timed sweepStrategies(),
    // which parallelizes over the six *strategies*: one 8B evaluation
    // dominates the grid, and the nested per-question parallelFor runs
    // serially from inside a pool task, so wall time was the slowest
    // single strategy at every thread count (~flat items/s at 1/2/4
    // threads — measuring nothing).  Iterating the grid serially here
    // puts the 500-question Monte-Carlo loop of each evaluate() on the
    // pool, which is the layer whose scaling this benchmark guards.
    static er::core::EdgeReasoning facade;
    std::vector<er::strategy::InferenceStrategy> grid;
    for (auto id : {ModelId::Dsr1Qwen1_5B, ModelId::Llama31_8BIt,
                    ModelId::Dsr1Llama8B}) {
        for (int par : {1, 4}) {
            er::strategy::InferenceStrategy s;
            s.model = id;
            s.policy = er::strategy::TokenPolicy::hard(256);
            s.parallel = par;
            grid.push_back(s);
        }
    }
    // Profile/bank construction warm-up outside the timed region; the
    // evaluations themselves are recomputed cold every iteration.
    for (const auto &s : grid) {
        auto warm = facade.evaluator().evaluate(
            s, er::acc::Dataset::MmluRedux, 10);
        benchmark::DoNotOptimize(warm);
    }
    er::ThreadPool::setGlobalThreads(
        static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        for (const auto &s : grid) {
            auto rep = facade.evaluator().evaluate(
                s, er::acc::Dataset::MmluRedux, 500);
            benchmark::DoNotOptimize(rep);
        }
    }
    er::ThreadPool::setGlobalThreads(0);
    // items/s = strategy evaluations per wall second (UseRealTime:
    // work runs on pool workers, so CPU time would overcount).
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// --- Serving executor: exact vs macro decode stepping ----------------

/** 64-request trace with ~2k-token outputs: long decode stretches
 *  between scheduler events, the case macro-stepping targets. */
const std::vector<er::engine::ServerRequest> &
servingTrace()
{
    static const auto trace = [] {
        er::Rng rng(21, "bench-serving");
        return er::engine::ServingSimulator::poissonTrace(
            rng, 64, 8.0, 120, 2000);
    }();
    return trace;
}

void
BM_ServingDecode(benchmark::State &state, bool exact_steps)
{
    auto &eng = sharedEngine();
    er::engine::ServerConfig cfg;
    cfg.maxBatch = 64;
    cfg.exactSteps = exact_steps;
    double generated = 0.0;
    for (auto _ : state) {
        er::engine::ServingSimulator srv(eng, cfg);
        auto rep = srv.run(servingTrace());
        generated = rep.generatedTokens;
        benchmark::DoNotOptimize(rep);
    }
    // items_per_second = simulated decode tokens per wall second; the
    // macro/exact ratio is the fast-forward speedup (DESIGN.md §10).
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(generated));
    state.counters["sim_tokens"] = generated;
}

void
BM_ServingDecodeExact(benchmark::State &state)
{
    BM_ServingDecode(state, true);
}
BENCHMARK(BM_ServingDecodeExact);

void
BM_ServingDecodeMacro(benchmark::State &state)
{
    BM_ServingDecode(state, false);
}
BENCHMARK(BM_ServingDecodeMacro);

// --- Columnar request state + calendar-queue horizon (DESIGN.md §11) -

void
BM_ServingDecodeColumnar(benchmark::State &state)
{
    // Horizon-scan-bound workload: a deep backlog (16k requests at
    // 50 qps against one device) keeps the wait queue thousands of
    // entries long, so pre-columnar macro segments paid an O(queue)
    // deadline/eligibility rescan per segment.  The calendar-queue
    // indexes turn that into amortized O(1); this benchmark is the
    // regression guard on that path.
    auto &eng = sharedEngine();
    static const auto trace = [] {
        er::Rng rng(33, "bench-columnar");
        return er::engine::ServingSimulator::poissonTrace(
            rng, 16384, 50.0, 64, 256);
    }();
    er::engine::ServerConfig cfg;
    cfg.maxBatch = 256;
    double generated = 0.0;
    for (auto _ : state) {
        er::engine::ServingSimulator srv(eng, cfg);
        auto rep = srv.run(trace);
        generated = rep.generatedTokens;
        benchmark::DoNotOptimize(rep);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(generated));
    state.counters["sim_tokens"] = generated;
}
BENCHMARK(BM_ServingDecodeColumnar);

// --- Shared-prefix KV reuse (DESIGN.md §13) --------------------------

void
BM_PrefixHitServing(benchmark::State &state)
{
    // Session workload against the radix prefix index: 32 overlapping
    // chat sessions re-send their growing history each turn, so most
    // admissions walk the index, attach shared blocks, and publish
    // fresh ones at retire.  Guards the cost of the prefix-enabled
    // serving path (paged KV + chain-hash index + eviction) end to
    // end.
    auto &eng = sharedEngine();
    static const auto trace = [] {
        er::acc::SessionTraceConfig sc;
        sc.sessions = 32;
        sc.turnsPerSession = 4;
        sc.sessionQps = 1.0;
        sc.meanTurnGap = 15.0;
        sc.systemPromptTokens = 512;
        er::Rng rng(77, "bench-prefix-serving");
        return er::acc::generateSessionTrace(sc, rng);
    }();
    er::engine::ServerConfig cfg;
    cfg.maxBatch = 32;
    cfg.prefixCache.enabled = true;
    double generated = 0.0;
    double hit_rate = 0.0;
    for (auto _ : state) {
        er::engine::ServingSimulator srv(eng, cfg);
        auto rep = srv.run(trace);
        generated = rep.generatedTokens;
        hit_rate = rep.prefixHitRate;
        benchmark::DoNotOptimize(rep);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(generated));
    state.counters["sim_tokens"] = generated;
    state.counters["hit_rate"] = hit_rate;
}
BENCHMARK(BM_PrefixHitServing);

void
BM_ShardedTraceScaling(benchmark::State &state)
{
    // runSharded() thread scaling over 16 independent replications.
    // The trace set is fixed (named RngBank streams, independent of
    // execution order), so every thread count simulates identical
    // work and the reports are bit-identical — only wall time moves.
    auto &eng = sharedEngine();
    static const auto traces = [] {
        er::RngBank bank(404);
        return er::engine::ServingSimulator::replicatedPoissonTraces(
            bank, 16, 512, 8.0, 120, 512);
    }();
    er::engine::ServerConfig cfg;
    cfg.maxBatch = 64;
    // Engine memo warm-up so thread 1 and thread 8 meet equally warm
    // caches.
    {
        auto warm = er::engine::ServingSimulator::runSharded(
            eng, cfg, traces, traces.size());
        benchmark::DoNotOptimize(warm);
    }
    er::ThreadPool::setGlobalThreads(
        static_cast<unsigned>(state.range(0)));
    double generated = 0.0;
    for (auto _ : state) {
        auto reports = er::engine::ServingSimulator::runSharded(
            eng, cfg, traces, traces.size());
        generated = 0.0;
        for (const auto &r : reports)
            generated += r.generatedTokens;
        benchmark::DoNotOptimize(reports);
    }
    er::ThreadPool::setGlobalThreads(0);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(generated));
    state.counters["sim_tokens"] = generated;
}
BENCHMARK(BM_ShardedTraceScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// --- Fleet serving (DESIGN.md §12) -----------------------------------

void
BM_FleetScaling(benchmark::State &state)
{
    // End-to-end fleet cost per simulated token: N fault-injected
    // nodes behind the least-loaded router with retry + failover.
    // The fleet adds a conservative sync loop and per-event routing
    // on top of per-node macro-stepping; this guards that overhead.
    const int n = static_cast<int>(state.range(0));
    er::fleet::FleetConfig fc;
    for (int i = 0; i < n; ++i) {
        er::fleet::NodeSpec s;
        s.model = ModelId::DeepScaleR1_5B;
        fc.nodes.push_back(s);
    }
    fc.server.maxBatch = 16;
    fc.router = er::fleet::RouterPolicy::LeastLoaded;
    fc.nodeFaults.seed = 0xF1EE7;
    fc.nodeFaults.horizon = 3600.0;
    fc.nodeFaults.crashesPerHour = 12.0;
    fc.nodeFaults.meanRebootSeconds = 15.0;
    static const auto trace = [] {
        er::Rng rng(55, "bench-fleet");
        return er::engine::ServingSimulator::poissonTrace(
            rng, 512, 4.0, 96, 256);
    }();
    double generated = 0.0;
    for (auto _ : state) {
        er::fleet::FleetSimulator sim(fc);
        auto rep = sim.run(trace);
        generated = rep.generatedTokens;
        benchmark::DoNotOptimize(rep);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(generated));
    state.counters["sim_tokens"] = generated;
}
BENCHMARK(BM_FleetScaling)->Arg(2)->Arg(4);

void
BM_FleetScaling100k(benchmark::State &state)
{
    // Fleet-scale event engine (DESIGN.md §15): a 10^5-request trace
    // of short requests over a large healthy round-robin fleet, the
    // regime where per-event fleet-layer cost — not per-node decode
    // work — decides throughput.  Arg 0 = node count; Arg 1 = 1 runs
    // the next-stop index + batched routing (the default engine),
    // 0 the legacy all-node scans, so adjacent entries are the
    // before/after pair for the same workload.  items/s = fleet
    // events per second (FleetReport::events).
    const int n = static_cast<int>(state.range(0));
    er::fleet::FleetConfig fc;
    for (int i = 0; i < n; ++i) {
        er::fleet::NodeSpec s;
        s.model = ModelId::DeepScaleR1_5B;
        fc.nodes.push_back(s);
    }
    fc.server.maxBatch = 16;
    fc.router = er::fleet::RouterPolicy::RoundRobin;
    fc.nodeIndex = state.range(1) != 0;
    static const auto trace = [] {
        er::Rng rng(55, "bench-fleet-scale");
        return er::engine::ServingSimulator::poissonTrace(
            rng, 100000, 800.0, 8, 8);
    }();
    std::uint64_t events = 0;
    for (auto _ : state) {
        er::fleet::FleetSimulator sim(fc);
        auto rep = sim.run(trace);
        events = rep.events;
        benchmark::DoNotOptimize(rep);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events));
    state.counters["fleet_events"] = static_cast<double>(events);
}
BENCHMARK(BM_FleetScaling100k)
    ->Args({1024, 1})
    ->Args({1024, 0})
    ->Args({2048, 1})
    ->Args({2048, 0})
    ->Unit(benchmark::kMillisecond);

void
BM_FleetCheckpointResume(benchmark::State &state)
{
    // The fleet durability tax end to end: a checkpointed run killed
    // mid-trace plus the resume that finishes it.  Covers checkpoint
    // serialization (every node's full stack + fleet-layer state),
    // the container fsync/rename discipline, and restore.  Compare
    // against BM_FleetScaling/4 for the plain-run baseline.
    er::fleet::FleetConfig fc;
    for (int i = 0; i < 4; ++i) {
        er::fleet::NodeSpec s;
        s.model = ModelId::DeepScaleR1_5B;
        fc.nodes.push_back(s);
    }
    fc.server.maxBatch = 16;
    fc.router = er::fleet::RouterPolicy::LeastLoaded;
    fc.nodeFaults.seed = 0xF1EE7;
    fc.nodeFaults.horizon = 3600.0;
    fc.nodeFaults.crashesPerHour = 12.0;
    fc.nodeFaults.meanRebootSeconds = 15.0;
    static const auto trace = [] {
        er::Rng rng(55, "bench-fleet");
        return er::engine::ServingSimulator::poissonTrace(
            rng, 512, 4.0, 96, 256);
    }();
    const auto dir = std::filesystem::temp_directory_path() /
        "edgereason-bench-fleet-ckpt";
    double generated = 0.0;
    for (auto _ : state) {
        std::filesystem::remove_all(dir);
        er::fleet::FleetDurabilityOptions dur;
        dur.checkpointDir = dir.string();
        dur.checkpointEvery = 200;
        dur.crashAtEvent = 700;
        try {
            er::fleet::FleetSimulator doomed(fc);
            doomed.run(trace, dur);
        } catch (const er::fleet::FleetSimulatedCrash &) {
        }
        dur.crashAtEvent = -1;
        dur.resume = true;
        er::fleet::FleetSimulator sim(fc);
        auto rep = sim.run(trace, dur);
        generated = rep.generatedTokens;
        benchmark::DoNotOptimize(rep);
    }
    std::filesystem::remove_all(dir);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(generated));
    state.counters["sim_tokens"] = generated;
}
BENCHMARK(BM_FleetCheckpointResume);

} // namespace

BENCHMARK_MAIN();
