/**
 * @file
 * google-benchmark micro-benchmarks of the simulator itself: kernel
 * enumeration, roofline execution, full request simulation, the
 * characterization pipeline's question runs, and the Monte-Carlo
 * accuracy evaluator.  These guard against performance regressions in
 * the infrastructure (a full Table XI regeneration runs ~60 strategy
 * evaluations over 3,000 questions each).
 */

#include <benchmark/benchmark.h>

#include "accuracy/simulate.hh"
#include "common/thread_pool.hh"
#include "core/edge_reasoning.hh"
#include "core/pareto.hh"
#include "engine/engine.hh"
#include "engine/server.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using er::model::ModelId;

namespace {

er::engine::InferenceEngine &
sharedEngine()
{
    static er::engine::InferenceEngine eng = [] {
        er::engine::EngineConfig cfg;
        cfg.measurementNoise = false;
        return er::engine::InferenceEngine(
            er::model::spec(ModelId::Dsr1Llama8B),
            er::model::calibration(ModelId::Dsr1Llama8B), cfg);
    }();
    return eng;
}

void
BM_KernelEnumeration(benchmark::State &state)
{
    const auto spec = er::model::spec(ModelId::Dsr1Llama8B);
    for (auto _ : state) {
        auto ks = er::engine::decodeKernels(spec, 1024, 4);
        benchmark::DoNotOptimize(ks);
    }
}
BENCHMARK(BM_KernelEnumeration);

void
BM_DecodeStepLatency(benchmark::State &state)
{
    auto &eng = sharedEngine();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            eng.decodeStepLatency(static_cast<er::Tokens>(
                state.range(0))));
    }
}
BENCHMARK(BM_DecodeStepLatency)->Arg(512)->Arg(4096);

void
BM_FullRequest(benchmark::State &state)
{
    auto &eng = sharedEngine();
    for (auto _ : state) {
        auto r = eng.run(170, static_cast<er::Tokens>(state.range(0)));
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_FullRequest)->Arg(128)->Arg(1024);

void
BM_PrefillSweepPoint(benchmark::State &state)
{
    auto &eng = sharedEngine();
    for (auto _ : state) {
        auto m = eng.prefillOnly(2048);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_PrefillSweepPoint);

void
BM_AccuracyEvaluation(benchmark::State &state)
{
    static er::acc::QuestionBank bank(er::acc::Dataset::MmluRedux, 99);
    static const er::acc::ResponseProfile prof(
        ModelId::Dsr1Llama8B, er::acc::Dataset::MmluRedux, false);
    er::acc::ResponseSimulator sim(prof, 1);
    const auto sub = bank.subset(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto ev = sim.evaluate(sub, er::strategy::TokenPolicy::base(),
                               static_cast<int>(state.range(1)));
        benchmark::DoNotOptimize(ev);
    }
    state.SetItemsProcessed(state.iterations() *
                            state.range(0) * state.range(1));
}
BENCHMARK(BM_AccuracyEvaluation)
    ->Args({1000, 1})
    ->Args({1000, 8})
    ->Args({3000, 1});

void
BM_KernelCacheHit(benchmark::State &state)
{
    // Steady-state decode-step cost with the (context, batch) memo
    // cache warm — this is the path the parallel sweeps hammer.
    auto &eng = sharedEngine();
    benchmark::DoNotOptimize(eng.decodeStepLatency(1024, 4));
    for (auto _ : state)
        benchmark::DoNotOptimize(eng.decodeStepLatency(1024, 4));
    const auto stats = eng.kernelCacheStats();
    state.counters["hit_rate"] =
        static_cast<double>(stats.hits) /
        static_cast<double>(stats.hits + stats.misses);
}
BENCHMARK(BM_KernelCacheHit);

void
BM_ParallelSweep(benchmark::State &state)
{
    // End-to-end strategy-grid sweep at 1/2/4 pool threads.  Work runs
    // on pool workers, so wall time (UseRealTime) is the honest metric.
    static er::core::EdgeReasoning facade;
    std::vector<er::strategy::InferenceStrategy> grid;
    for (auto id : {ModelId::Dsr1Qwen1_5B, ModelId::Llama31_8BIt,
                    ModelId::Dsr1Llama8B}) {
        for (int par : {1, 4}) {
            er::strategy::InferenceStrategy s;
            s.model = id;
            s.policy = er::strategy::TokenPolicy::hard(256);
            s.parallel = par;
            grid.push_back(s);
        }
    }
    // Characterize/profiling warm-up outside the timed region.
    er::core::sweepStrategies(facade.evaluator(), grid,
                              er::acc::Dataset::MmluRedux, 10);
    er::ThreadPool::setGlobalThreads(
        static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        auto reports = er::core::sweepStrategies(
            facade.evaluator(), grid, er::acc::Dataset::MmluRedux,
            500);
        benchmark::DoNotOptimize(reports);
    }
    er::ThreadPool::setGlobalThreads(0);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// --- Serving executor: exact vs macro decode stepping ----------------

/** 64-request trace with ~2k-token outputs: long decode stretches
 *  between scheduler events, the case macro-stepping targets. */
const std::vector<er::engine::ServerRequest> &
servingTrace()
{
    static const auto trace = [] {
        er::Rng rng(21, "bench-serving");
        return er::engine::ServingSimulator::poissonTrace(
            rng, 64, 8.0, 120, 2000);
    }();
    return trace;
}

void
BM_ServingDecode(benchmark::State &state, bool exact_steps)
{
    auto &eng = sharedEngine();
    er::engine::ServerConfig cfg;
    cfg.maxBatch = 64;
    cfg.exactSteps = exact_steps;
    double generated = 0.0;
    for (auto _ : state) {
        er::engine::ServingSimulator srv(eng, cfg);
        auto rep = srv.run(servingTrace());
        generated = rep.generatedTokens;
        benchmark::DoNotOptimize(rep);
    }
    // items_per_second = simulated decode tokens per wall second; the
    // macro/exact ratio is the fast-forward speedup (DESIGN.md §10).
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(generated));
    state.counters["sim_tokens"] = generated;
}

void
BM_ServingDecodeExact(benchmark::State &state)
{
    BM_ServingDecode(state, true);
}
BENCHMARK(BM_ServingDecodeExact);

void
BM_ServingDecodeMacro(benchmark::State &state)
{
    BM_ServingDecode(state, false);
}
BENCHMARK(BM_ServingDecodeMacro);

} // namespace

BENCHMARK_MAIN();
