/**
 * @file
 * google-benchmark micro-benchmarks of the simulator itself: kernel
 * enumeration, roofline execution, full request simulation, the
 * characterization pipeline's question runs, and the Monte-Carlo
 * accuracy evaluator.  These guard against performance regressions in
 * the infrastructure (a full Table XI regeneration runs ~60 strategy
 * evaluations over 3,000 questions each).
 */

#include <benchmark/benchmark.h>

#include "accuracy/simulate.hh"
#include "engine/engine.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using er::model::ModelId;

namespace {

er::engine::InferenceEngine &
sharedEngine()
{
    static er::engine::InferenceEngine eng = [] {
        er::engine::EngineConfig cfg;
        cfg.measurementNoise = false;
        return er::engine::InferenceEngine(
            er::model::spec(ModelId::Dsr1Llama8B),
            er::model::calibration(ModelId::Dsr1Llama8B), cfg);
    }();
    return eng;
}

void
BM_KernelEnumeration(benchmark::State &state)
{
    const auto spec = er::model::spec(ModelId::Dsr1Llama8B);
    for (auto _ : state) {
        auto ks = er::engine::decodeKernels(spec, 1024, 4);
        benchmark::DoNotOptimize(ks);
    }
}
BENCHMARK(BM_KernelEnumeration);

void
BM_DecodeStepLatency(benchmark::State &state)
{
    auto &eng = sharedEngine();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            eng.decodeStepLatency(static_cast<er::Tokens>(
                state.range(0))));
    }
}
BENCHMARK(BM_DecodeStepLatency)->Arg(512)->Arg(4096);

void
BM_FullRequest(benchmark::State &state)
{
    auto &eng = sharedEngine();
    for (auto _ : state) {
        auto r = eng.run(170, static_cast<er::Tokens>(state.range(0)));
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_FullRequest)->Arg(128)->Arg(1024);

void
BM_PrefillSweepPoint(benchmark::State &state)
{
    auto &eng = sharedEngine();
    for (auto _ : state) {
        auto m = eng.prefillOnly(2048);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_PrefillSweepPoint);

void
BM_AccuracyEvaluation(benchmark::State &state)
{
    static er::acc::QuestionBank bank(er::acc::Dataset::MmluRedux, 99);
    static const er::acc::ResponseProfile prof(
        ModelId::Dsr1Llama8B, er::acc::Dataset::MmluRedux, false);
    er::acc::ResponseSimulator sim(prof, 1);
    const auto sub = bank.subset(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto ev = sim.evaluate(sub, er::strategy::TokenPolicy::base(),
                               static_cast<int>(state.range(1)));
        benchmark::DoNotOptimize(ev);
    }
    state.SetItemsProcessed(state.iterations() *
                            state.range(0) * state.range(1));
}
BENCHMARK(BM_AccuracyEvaluation)
    ->Args({1000, 1})
    ->Args({1000, 8})
    ->Args({3000, 1});

} // namespace

BENCHMARK_MAIN();
