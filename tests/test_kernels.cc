/**
 * @file
 * Unit tests for kernel enumeration: tile padding (the Fig. 2 stepped
 * pattern), FLOP/byte bookkeeping, and batch padding (Section V-E).
 */

#include <gtest/gtest.h>

#include "engine/kernels.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::engine;
using er::model::ModelId;

TEST(PadToTile, RoundsUp)
{
    EXPECT_EQ(padToTile(1, 128), 128);
    EXPECT_EQ(padToTile(128, 128), 128);
    EXPECT_EQ(padToTile(129, 128), 256);
    EXPECT_EQ(padToTile(0, 128), 0);
}

TEST(PrefillKernels, FlopsMatchArchitecture)
{
    const auto s = er::model::spec(ModelId::Dsr1Llama8B);
    const auto ks = prefillKernels(s, 1024);
    // Linear FLOPs ~ 2 * non-embedding params * padded tokens, plus
    // attention and one LM-head position.
    double linear = 0.0;
    double attn = 0.0;
    for (const auto &k : ks) {
        if (k.cls == er::hw::KernelClass::GemmTensorCore)
            linear += k.flops;
        if (k.cls == er::hw::KernelClass::AttentionPrefill)
            attn += k.flops;
    }
    EXPECT_NEAR(attn, s.attentionPrefillFlops(1024), 1.0);
    EXPECT_GT(linear, 2.0 * 6.9e9 * 1024);
    EXPECT_LT(linear, 2.0 * 8.1e9 * 1024);
}

TEST(PrefillKernels, PaddingCreatesPlateaus)
{
    const auto s = er::model::spec(ModelId::Dsr1Qwen14B);
    // Within one 128-token segment the tensor-core compute FLOPs are
    // identical (elementwise kernels track the true row count).
    const auto padded_flops = [](const std::vector<er::hw::KernelDesc>
                                     &ks) {
        double f = 0.0;
        for (const auto &k : ks) {
            if (k.cls == er::hw::KernelClass::GemmTensorCore ||
                k.cls == er::hw::KernelClass::AttentionPrefill)
                f += k.flops;
        }
        return f;
    };
    const auto a = prefillKernels(s, 129);
    const auto b = prefillKernels(s, 256);
    EXPECT_DOUBLE_EQ(padded_flops(a), padded_flops(b));
    // Crossing the boundary jumps.
    const auto c = prefillKernels(s, 257);
    EXPECT_GT(padded_flops(c), padded_flops(b));
    // Activations still track the true token count.
    EXPECT_LT(totalBytes(a), totalBytes(b));
}

TEST(PrefillKernels, DisablePaddingRemovesPlateaus)
{
    const auto s = er::model::spec(ModelId::Dsr1Qwen14B);
    KernelBuildOptions opts;
    opts.disablePadding = true;
    const auto a = prefillKernels(s, 129, opts);
    const auto b = prefillKernels(s, 256, opts);
    EXPECT_LT(totalFlops(a), totalFlops(b));
}

TEST(PrefillKernels, RejectsOversizedContext)
{
    const auto s = er::model::spec(ModelId::Gemma7BIt); // 8k context
    EXPECT_THROW(prefillKernels(s, 100000), std::runtime_error);
    EXPECT_THROW(prefillKernels(s, 0), std::runtime_error);
}

TEST(DecodeKernels, WeightBytesStreamWholeModelOncePerStep)
{
    const auto s = er::model::spec(ModelId::Dsr1Llama8B);
    const auto ks = decodeKernels(s, 512);
    double weights = 0.0;
    for (const auto &k : ks)
        weights += k.weightBytes;
    // Layer weights + LM head (embedding lookup excluded): ~15 GB.
    EXPECT_NEAR(weights / 1e9, 15.0, 0.3);
}

TEST(DecodeKernels, KvTrafficScalesWithContextAndBatch)
{
    const auto s = er::model::spec(ModelId::Dsr1Qwen14B);
    const auto bytes_at = [&](er::Tokens ctx, int batch) {
        double kv = 0.0;
        for (const auto &k : decodeKernels(s, ctx, batch)) {
            if (k.cls == er::hw::KernelClass::AttentionDecode)
                kv += k.actBytes;
        }
        return kv;
    };
    EXPECT_NEAR(bytes_at(1024, 1) / bytes_at(512, 1), 2.0, 1e-6);
    EXPECT_NEAR(bytes_at(512, 8) / bytes_at(512, 1), 8.0, 1e-6);
    // Absolute value: context x kvBytesPerToken.
    EXPECT_NEAR(bytes_at(512, 1), 512.0 * s.kvBytesPerToken(), 1.0);
}

TEST(DecodeKernels, BatchPaddingMakesComputeFlatBelowTile)
{
    const auto s = er::model::spec(ModelId::Dsr1Llama8B);
    // GEMV compute FLOPs are padded to the 128-wide batch tile, so
    // they are identical for batch 1 and batch 64 (Section V-E).
    const auto flops_of = [&](int batch) {
        double f = 0.0;
        for (const auto &k : decodeKernels(s, 512, batch)) {
            if (k.cls == er::hw::KernelClass::GemvBandwidth)
                f += k.flops;
        }
        return f;
    };
    EXPECT_DOUBLE_EQ(flops_of(1), flops_of(64));
    EXPECT_DOUBLE_EQ(flops_of(1), flops_of(128));
    EXPECT_GT(flops_of(129), flops_of(128));
}

TEST(PrefillSuffixKernels, ZeroPrefixEqualsFullPrefill)
{
    const auto s = er::model::spec(ModelId::Dsr1Llama8B);
    const auto full = prefillKernels(s, 512);
    const auto suffix = prefillSuffixKernels(s, 0, 512);
    ASSERT_EQ(full.size(), suffix.size());
    EXPECT_DOUBLE_EQ(totalFlops(full), totalFlops(suffix));
}

TEST(PrefillSuffixKernels, AttentionCoversFullContext)
{
    const auto s = er::model::spec(ModelId::Dsr1Llama8B);
    const auto ks = prefillSuffixKernels(s, 2048, 256);
    double attn_flops = 0.0;
    double linear_flops = 0.0;
    for (const auto &k : ks) {
        if (k.cls == er::hw::KernelClass::AttentionPrefill)
            attn_flops += k.flops;
        if (k.cls == er::hw::KernelClass::GemmTensorCore)
            linear_flops += k.flops;
    }
    // Attention work = causal(2304) - causal(2048).
    EXPECT_NEAR(attn_flops,
                s.attentionPrefillFlops(2304) -
                    s.attentionPrefillFlops(2048),
                1.0);
    // Linear work covers only the (padded) suffix rows.
    double suffix_linear = 0.0;
    for (const auto &k : prefillKernels(s, 256)) {
        if (k.cls == er::hw::KernelClass::GemmTensorCore)
            suffix_linear += k.flops;
    }
    EXPECT_DOUBLE_EQ(linear_flops, suffix_linear);
}

TEST(PrefillSuffixKernels, RespectsContextLimit)
{
    const auto s = er::model::spec(ModelId::Gemma7BIt); // 8k max
    EXPECT_THROW(prefillSuffixKernels(s, 8000, 300),
                 std::runtime_error);
}

TEST(DecodeKernels, RejectsBadArguments)
{
    const auto s = er::model::spec(ModelId::Dsr1Qwen1_5B);
    EXPECT_THROW(decodeKernels(s, 0), std::runtime_error);
    EXPECT_THROW(decodeKernels(s, 512, 0), std::runtime_error);
    EXPECT_THROW(decodeKernels(s, 1 << 20), std::runtime_error);
}
