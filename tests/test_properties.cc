/**
 * @file
 * Property-based tests: parameterized sweeps asserting invariants that
 * must hold for every model, precision, and operating point —
 * monotonicity of latency in each workload dimension, energy
 * positivity and composition, padding idempotence, and profile
 * consistency between expected and simulated accuracy.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <tuple>

#include "accuracy/simulate.hh"
#include "engine/engine.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using er::model::ModelId;
using er::strategy::TokenPolicy;

namespace {

/** gtest parameter names must be alphanumeric; model names are not. */
struct NameSanitizer
{
    static std::string
    clean(std::string s)
    {
        for (char &c : s) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return s;
    }
};

} // namespace

// ---------------------------------------------------------------------
// Engine invariants over (model, precision).
// ---------------------------------------------------------------------

class EnginePropertyTest
    : public ::testing::TestWithParam<std::tuple<ModelId, bool>>
{
  protected:
    er::engine::InferenceEngine
    makeEngine() const
    {
        const auto [id, quant] = GetParam();
        er::engine::EngineConfig cfg;
        cfg.measurementNoise = false;
        return er::engine::InferenceEngine(
            quant ? er::model::quantizedSpec(id) : er::model::spec(id),
            er::model::calibration(
                id, quant ? er::DType::W4A16 : er::DType::FP16),
            cfg);
    }
};

TEST_P(EnginePropertyTest, PrefillLatencyMonotoneAcrossTiles)
{
    auto eng = makeEngine();
    double prev = 0.0;
    for (er::Tokens i = 128; i <= 4096; i += 128) {
        const double t = eng.prefillLatency(i);
        EXPECT_GE(t, prev) << "I = " << i;
        prev = t;
    }
}

TEST_P(EnginePropertyTest, TbtMonotoneInContext)
{
    auto eng = makeEngine();
    double prev = 0.0;
    for (er::Tokens c : {64, 256, 1024, 4096, 16384}) {
        if (c > eng.spec().maxContext)
            break; // Gemma tops out at 8k context
        const double t = eng.decodeStepLatency(c);
        EXPECT_GE(t, prev) << "ctx = " << c;
        prev = t;
    }
}

TEST_P(EnginePropertyTest, TbtMonotoneInBatch)
{
    auto eng = makeEngine();
    double prev = 0.0;
    for (int b : {1, 2, 4, 8, 16, 32, 64}) {
        const double t = eng.decodeStepLatency(512, b);
        EXPECT_GE(t, prev) << "batch = " << b;
        prev = t;
    }
}

TEST_P(EnginePropertyTest, EnergyAndPowerAreConsistent)
{
    auto eng = makeEngine();
    for (er::Tokens o : {32, 128, 512}) {
        const auto r = eng.run(256, o);
        EXPECT_GT(r.prefill.energy, 0.0);
        EXPECT_GT(r.decode.energy, 0.0);
        EXPECT_NEAR(r.totalEnergy(),
                    r.prefill.energy + r.decode.energy, 1e-9);
        EXPECT_GT(r.decode.avgPower, 4.0);
        EXPECT_LE(r.decode.avgPower, 60.0);
        EXPECT_NEAR(r.decode.avgPower * r.decode.seconds,
                    r.decode.energy, 1e-6);
    }
}

TEST_P(EnginePropertyTest, DecodeDominatesAtReasoningLengths)
{
    auto eng = makeEngine();
    const auto r = eng.run(170, 800);
    EXPECT_GT(r.decode.seconds / r.totalSeconds(), 0.95);
}

TEST_P(EnginePropertyTest, KvCacheIsReleasedAfterRuns)
{
    auto eng = makeEngine();
    for (int i = 0; i < 5; ++i)
        eng.run(512, 64, 4);
    EXPECT_EQ(eng.kvCache().blocksInUse(), 0u);
    EXPECT_EQ(eng.kvCache().sequenceCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, EnginePropertyTest,
    ::testing::Combine(
        ::testing::Values(ModelId::Dsr1Qwen1_5B, ModelId::Dsr1Llama8B,
                          ModelId::Dsr1Qwen14B, ModelId::Qwen25_7BIt,
                          ModelId::Gemma7BIt),
        ::testing::Bool()),
    [](const auto &info) {
        return NameSanitizer::clean(
            std::string(er::model::modelName(std::get<0>(info.param))) +
            (std::get<1>(info.param) ? "_w4" : "_fp16"));
    });

// ---------------------------------------------------------------------
// Profile invariants over (model, dataset).
// ---------------------------------------------------------------------

class ProfilePropertyTest
    : public ::testing::TestWithParam<std::tuple<ModelId, bool>>
{
};

TEST_P(ProfilePropertyTest, ExpectedAccuracyMatchesSimulation)
{
    const auto [id, quant] = GetParam();
    const er::acc::ResponseProfile prof(id, er::acc::Dataset::MmluRedux,
                                        quant);
    const er::acc::QuestionBank bank(er::acc::Dataset::MmluRedux, 99);
    for (const auto &pol : {TokenPolicy::base()}) {
        double acc = 0.0;
        const int seeds = 6;
        for (int s = 0; s < seeds; ++s) {
            er::acc::ResponseSimulator sim(prof, 31 + 977ull * s);
            acc += sim.evaluate(bank.questions(), pol, 1).accuracyPct;
        }
        acc /= seeds;
        EXPECT_NEAR(acc / 100.0, prof.expectedAccuracy(pol), 0.012)
            << er::model::modelName(id);
    }
}

TEST_P(ProfilePropertyTest, HardBudgetAccuracyMonotone)
{
    const auto [id, quant] = GetParam();
    if (quant)
        GTEST_SKIP() << "budget sweeps published for fp16 only";
    const er::acc::ResponseProfile prof(id, er::acc::Dataset::MmluRedux,
                                        false);
    // Accuracy never decreases when the budget doubles (within fit
    // slack).
    double prev = 0.0;
    for (er::Tokens n : {64, 128, 256, 512, 1024, 2048}) {
        const auto pol = er::model::modelCategory(id) ==
                er::model::ModelCategory::BudgetAware
            ? TokenPolicy::l1(n)
            : TokenPolicy::hard(n);
        const double acc = prof.expectedAccuracy(pol);
        EXPECT_GE(acc, prev - 0.02) << "n = " << n;
        prev = acc;
    }
}

TEST_P(ProfilePropertyTest, MeanTokensRespectHardCaps)
{
    const auto [id, quant] = GetParam();
    if (quant)
        GTEST_SKIP() << "budget sweeps published for fp16 only";
    const er::acc::ResponseProfile prof(id, er::acc::Dataset::MmluRedux,
                                        false);
    for (er::Tokens n : {32, 64, 128, 256, 512, 1024}) {
        EXPECT_LE(prof.meanTokens(TokenPolicy::hard(n)),
                  static_cast<double>(n) + 1e-9)
            << "n = " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AnchoredModels, ProfilePropertyTest,
    ::testing::Values(std::make_tuple(ModelId::Dsr1Qwen1_5B, false),
                      std::make_tuple(ModelId::Dsr1Llama8B, false),
                      std::make_tuple(ModelId::Dsr1Qwen14B, false),
                      std::make_tuple(ModelId::L1Max, false),
                      std::make_tuple(ModelId::Dsr1Llama8B, true),
                      std::make_tuple(ModelId::Dsr1Qwen14B, true)),
    [](const auto &info) {
        return NameSanitizer::clean(
            std::string(er::model::modelName(std::get<0>(info.param))) +
            (std::get<1>(info.param) ? "_w4" : "_fp16"));
    });
