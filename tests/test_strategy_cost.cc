/**
 * @file
 * Unit tests for token policies, strategy labels and the cost model
 * (Table III arithmetic).
 */

#include <gtest/gtest.h>

#include "cost/cost_model.hh"
#include "strategy/policy.hh"

namespace er = edgereason;
using namespace er::strategy;
using namespace er::cost;

TEST(TokenPolicy, LabelsMatchPaperNotation)
{
    EXPECT_EQ(TokenPolicy::base().label(), "Base");
    EXPECT_EQ(TokenPolicy::hard(128).label(), "128T");
    EXPECT_EQ(TokenPolicy::soft(256).label(), "256 (NC)");
    EXPECT_EQ(TokenPolicy::noReasoning().label(), "NR");
    EXPECT_EQ(TokenPolicy::l1(256).label(), "L1-256");
}

TEST(TokenPolicy, HardCapFlagAndOrdering)
{
    EXPECT_TRUE(TokenPolicy::hard(128).isHardCapped());
    EXPECT_TRUE(TokenPolicy::l1(128).isHardCapped());
    EXPECT_FALSE(TokenPolicy::soft(128).isHardCapped());
    EXPECT_FALSE(TokenPolicy::base().isHardCapped());
    EXPECT_TRUE(TokenPolicy::hard(128) < TokenPolicy::hard(256));
    EXPECT_TRUE(TokenPolicy::hard(128) == TokenPolicy::hard(128));
}

TEST(InferenceStrategy, LabelsComposeAllDimensions)
{
    InferenceStrategy s;
    s.model = er::model::ModelId::Dsr1Qwen14B;
    s.quantized = true;
    s.policy = TokenPolicy::hard(256);
    s.parallel = 8;
    EXPECT_EQ(s.label(), "DSR1-Qwen-14B-AWQ-W4 256T x8");
    s.quantized = false;
    s.parallel = 1;
    EXPECT_EQ(s.label(), "DSR1-Qwen-14B 256T");
}

TEST(CostModel, ReproducesTableIIIBatchOne)
{
    // Table III: 195,624 tokens in 4,358 s using 0.0317 kWh yields
    // $0.302/1M tokens ($0.024 energy + $0.278 hardware).
    const er::Joules energy = 0.0317 * 3.6e6;
    const auto c = edgeCost(energy, 4358.0, 195624.0);
    EXPECT_NEAR(c.energyPerMTok, 0.024, 0.002);
    EXPECT_NEAR(c.hardwarePerMTok, 0.278, 0.005);
    EXPECT_NEAR(c.totalPerMTok(), 0.302, 0.006);
}

TEST(CostModel, ReproducesTableIIIBatchThirty)
{
    // Batch 30: 398 s and 0.003 kWh -> $0.027/1M.
    const auto c = edgeCost(0.003 * 3.6e6, 398.0, 195624.0);
    EXPECT_NEAR(c.energyPerMTok, 0.0023, 0.0005);
    EXPECT_NEAR(c.hardwarePerMTok, 0.025, 0.002);
    EXPECT_NEAR(c.totalPerMTok(), 0.027, 0.002);
}

TEST(CostModel, CloudPricesAreOrdersOfMagnitudeHigher)
{
    const auto o1 = o1Preview();
    EXPECT_DOUBLE_EQ(o1.outputPerMTok, 60.0);
    const auto batch1 = edgeCost(0.0317 * 3.6e6, 4358.0, 195624.0);
    EXPECT_GT(o1.outputPerMTok / batch1.totalPerMTok(), 100.0);
}

TEST(CostModel, CustomRates)
{
    CostRates rates;
    rates.electricityPerKwh = 0.30;
    rates.hardwarePerHour = 0.09;
    const auto base = edgeCost(3.6e6, 3600.0, 1e6);
    const auto doubled = edgeCost(3.6e6, 3600.0, 1e6, rates);
    EXPECT_NEAR(doubled.energyPerMTok, 2.0 * base.energyPerMTok, 1e-9);
    EXPECT_NEAR(doubled.hardwarePerMTok, 2.0 * base.hardwarePerMTok,
                1e-9);
}

TEST(CostModel, RejectsDegenerateInput)
{
    EXPECT_THROW(edgeCost(1.0, 1.0, 0.0), std::runtime_error);
    EXPECT_THROW(edgeCost(-1.0, 1.0, 10.0), std::runtime_error);
}
