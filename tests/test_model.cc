/**
 * @file
 * Unit tests for the model zoo: parameter counts against published
 * sizes, KV-cache byte rates against the decode-slope analysis of
 * Table V, and calibration plumbing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/calibration.hh"
#include "model/model_id.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::model;

TEST(Zoo, ParamCountsMatchPublishedSizes)
{
    // Published parameter counts of the underlying architectures.
    EXPECT_NEAR(spec(ModelId::Dsr1Qwen1_5B).paramCount() / 1e9, 1.54,
                0.05);
    EXPECT_NEAR(spec(ModelId::Dsr1Llama8B).paramCount() / 1e9, 8.03,
                0.1);
    EXPECT_NEAR(spec(ModelId::Dsr1Qwen14B).paramCount() / 1e9, 14.7,
                0.2);
    EXPECT_NEAR(spec(ModelId::Qwen25_7BIt).paramCount() / 1e9, 7.6,
                0.15);
    EXPECT_NEAR(spec(ModelId::Gemma7BIt).paramCount() / 1e9, 8.5, 0.3);
}

TEST(Zoo, DistillsShareBaseArchitectures)
{
    EXPECT_EQ(spec(ModelId::Dsr1Qwen1_5B).layers,
              spec(ModelId::Qwen25_1_5BIt).layers);
    EXPECT_EQ(spec(ModelId::Dsr1Llama8B).hidden,
              spec(ModelId::Llama31_8BIt).hidden);
    EXPECT_EQ(spec(ModelId::L1Max).ffnHidden,
              spec(ModelId::Dsr1Qwen1_5B).ffnHidden);
    EXPECT_EQ(spec(ModelId::DeepScaleR1_5B).vocab,
              spec(ModelId::Dsr1Qwen1_5B).vocab);
}

TEST(Zoo, KvBytesPerTokenMatchesDecodeSlopeAnalysis)
{
    // The paper's fitted decode slope m ~= kvBytesPerToken / BW.
    // Llama-8B: 2 x 32 layers x 8 kv heads x 128 dim x 2 B = 128 KiB.
    EXPECT_NEAR(spec(ModelId::Dsr1Llama8B).kvBytesPerToken(), 131072.0,
                1.0);
    // Qwen-14B: 2 x 48 x 8 x 128 x 2 = 192 KiB.
    EXPECT_NEAR(spec(ModelId::Dsr1Qwen14B).kvBytesPerToken(), 196608.0,
                1.0);
    // Qwen-1.5B (2 kv heads) is an order of magnitude lighter.
    EXPECT_LT(spec(ModelId::Dsr1Qwen1_5B).kvBytesPerToken(), 30000.0);
}

TEST(Zoo, QuantizationShrinksWeightsOnly)
{
    const auto fp16 = spec(ModelId::Dsr1Llama8B);
    const auto w4 = quantizedSpec(ModelId::Dsr1Llama8B);
    EXPECT_NEAR(w4.weightBytes() / fp16.weightBytes(), 0.25, 1e-6);
    // KV cache stays FP16 under W4A16.
    EXPECT_DOUBLE_EQ(w4.kvBytesPerToken(), fp16.kvBytesPerToken());
    EXPECT_NE(w4.name.find("AWQ"), std::string::npos);
}

TEST(Zoo, SpecInvariantsHoldForAllModels)
{
    for (ModelId id : allModels()) {
        const auto s = spec(id);
        EXPECT_NO_THROW(s.check());
        EXPECT_GT(s.linearFlopsPerToken(), 0.0);
        EXPECT_GT(s.attentionPrefillFlops(128), 0.0);
        // Linear FLOPs per token ~ 2x params (minus embeddings).
        EXPECT_NEAR(s.linearFlopsPerToken() / (2.0 * s.paramCount()),
                    1.0, 0.25)
            << s.name;
    }
}

TEST(ModelIds, CategoriesAndFamilies)
{
    EXPECT_TRUE(isReasoning(ModelId::Dsr1Qwen14B));
    EXPECT_TRUE(isReasoning(ModelId::L1Max));
    EXPECT_FALSE(isReasoning(ModelId::Llama31_8BIt));
    EXPECT_EQ(modelCategory(ModelId::L1Max),
              ModelCategory::BudgetAware);
    EXPECT_EQ(dsr1Family().size(), 3u);
    EXPECT_EQ(nonReasoningModels().size(), 5u);
    EXPECT_EQ(modelIdFromName("DSR1-Qwen-14B"), ModelId::Dsr1Qwen14B);
    EXPECT_THROW(modelIdFromName("GPT-5"), std::runtime_error);
}

TEST(Calibration, SizeClassesAndPerClassValues)
{
    EXPECT_EQ(sizeClassOf(spec(ModelId::Dsr1Qwen1_5B)),
              SizeClass::Small);
    EXPECT_EQ(sizeClassOf(spec(ModelId::Dsr1Llama8B)),
              SizeClass::Medium);
    EXPECT_EQ(sizeClassOf(spec(ModelId::Gemma7BIt)), SizeClass::Medium);
    EXPECT_EQ(sizeClassOf(spec(ModelId::Dsr1Qwen14B)),
              SizeClass::Large);

    // Quantized calibration lowers achievable decode bandwidth
    // (dequantization overhead) for every size class.
    for (SizeClass c : {SizeClass::Small, SizeClass::Medium,
                        SizeClass::Large}) {
        const auto base = calibrationForClass(c, false);
        const auto quant = calibrationForClass(c, true);
        EXPECT_LT(quant.gpuEff.bandwidthDecode,
                  base.gpuEff.bandwidthDecode);
    }
}

TEST(Zoo, W8SpecHalvesWeights)
{
    const auto fp16 = spec(ModelId::Dsr1Llama8B);
    const auto w8 = quantizedSpec8(ModelId::Dsr1Llama8B);
    EXPECT_NEAR(w8.weightBytes() / fp16.weightBytes(), 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(w8.kvBytesPerToken(), fp16.kvBytesPerToken());
    EXPECT_NE(w8.name.find("W8A8"), std::string::npos);
}

TEST(Calibration, W8SitsBetweenFp16AndW4)
{
    for (SizeClass c : {SizeClass::Small, SizeClass::Medium,
                        SizeClass::Large}) {
        const auto fp16 = calibrationForClass(c, false);
        const auto w8 = calibrationForClassW8(c);
        const auto w4 = calibrationForClass(c, true);
        // Bandwidth efficiency: w4 < w8 < fp16 (dequant overhead).
        EXPECT_LT(w4.gpuEff.bandwidthDecode,
                  w8.gpuEff.bandwidthDecode);
        EXPECT_LT(w8.gpuEff.bandwidthDecode,
                  fp16.gpuEff.bandwidthDecode);
        // Prefill attention efficiency: fp16 <= w8 <= w4-ish band.
        EXPECT_GE(w8.gpuEff.attentionPrefill,
                  fp16.gpuEff.attentionPrefill);
    }
    // Dispatch through the dtype-keyed accessor.
    const auto via = calibration(ModelId::Dsr1Qwen14B,
                                 edgereason::DType::INT8);
    EXPECT_DOUBLE_EQ(via.gpuEff.bandwidthDecode,
                     calibrationForClassW8(SizeClass::Large)
                         .gpuEff.bandwidthDecode);
}

TEST(Calibration, PowerProfilesOrderedBySize)
{
    const auto s = calibrationForClass(SizeClass::Small, false).power;
    const auto m = calibrationForClass(SizeClass::Medium, false).power;
    const auto l = calibrationForClass(SizeClass::Large, false).power;
    EXPECT_LT(s.prefillConst, m.prefillConst);
    EXPECT_LT(m.prefillConst, l.prefillConst);
    // Decode power at a long output: small < medium < large.
    const auto at = [](const er::hw::PowerProfile &p, double o) {
        return p.decodeLogAlpha * std::log(o) + p.decodeLogBeta;
    };
    EXPECT_LT(at(s, 1024), at(m, 1024));
    EXPECT_LT(at(m, 1024), at(l, 1024));
}
