/**
 * @file
 * Fleet durability and gray-failure suite (DESIGN.md §14).  The
 * tentpole claim: killing the fleet *process* at any event and
 * resuming from the latest checkpoint reproduces the uninterrupted
 * fleet report bit for bit — across router policies, crash points,
 * and thread counts, with per-node journal tails byte-verified on
 * resume.  Plus the gray-failure model (slowdown windows that only
 * latency-quantile health can see), the adaptive breaker, and the
 * static breaker's boundary behavior (exact-threshold trip,
 * half-open recovery, flapping re-trip).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "engine/server.hh"
#include "fleet/fleet.hh"
#include "fleet/node_faults.hh"
#include "hw/gpu_spec.hh"
#include "model/model_id.hh"

namespace er = edgereason;
using namespace er::fleet;
using er::engine::ServerRequest;
using er::engine::ServingSimulator;

namespace {

const std::filesystem::path kArtifacts = "fleet-recovery-artifacts";

/** A fleet that exercises everything the checkpoint must carry:
 *  crashes + reboots (incarnations), degrade drains, hedged legs,
 *  per-try timeouts with retry backoff, and a twitchy breaker. */
FleetConfig
recoveryConfig(RouterPolicy p)
{
    FleetConfig fc;
    for (int i = 0; i < 3; ++i) {
        NodeSpec s;
        s.model = er::model::ModelId::DeepScaleR1_5B;
        s.powerMode = i % 2 ? er::hw::PowerMode::W30
                            : er::hw::PowerMode::MaxN;
        fc.nodes.push_back(s);
    }
    fc.server.maxBatch = 6;
    fc.router = p;
    fc.maxRetries = 3;
    fc.retryBackoff = 0.5;
    fc.hedgeFraction = 0.35;
    fc.requestTimeout = 45.0;
    fc.healthFailureThreshold = 2;
    fc.healthCooldown = 12.0;
    fc.paranoid = true;
    fc.nodeFaults.seed = 0xD00B;
    fc.nodeFaults.horizon = 300.0;
    fc.nodeFaults.crashesPerHour = 120.0;
    fc.nodeFaults.meanRebootSeconds = 10.0;
    fc.nodeFaults.degradesPerHour = 45.0;
    fc.nodeFaults.meanDegradeSeconds = 15.0;
    return fc;
}

std::vector<ServerRequest>
recoveryTrace()
{
    er::Rng rng(7, "fleet-recovery");
    auto t = ServingSimulator::poissonTrace(rng, 28, 1.5, 96, 224);
    for (auto &r : t)
        r.deadline = 75.0;
    return t;
}

/**
 * Run @p fc to the injected crash point, then resume from the latest
 * checkpoint and return the finished report.  The config's journalDir
 * (when set) makes the resume also byte-verify each node's re-emitted
 * journal tail against the pre-crash file.
 */
std::string
runCrashResume(const FleetConfig &fc,
               const std::vector<ServerRequest> &trace,
               const std::filesystem::path &dir,
               FleetDurabilityOptions crash_dur)
{
    crash_dur.checkpointDir = (dir / "ckpt").string();
    if (crash_dur.checkpointEvery == 0)
        crash_dur.checkpointEvery = 20;
    bool crashed = false;
    try {
        FleetSimulator sim(fc);
        sim.run(trace, crash_dur);
    } catch (const FleetSimulatedCrash &) {
        crashed = true;
    }
    EXPECT_TRUE(crashed) << "crash point was never reached";

    FleetDurabilityOptions res;
    res.checkpointDir = crash_dur.checkpointDir;
    res.checkpointEvery = crash_dur.checkpointEvery;
    res.resume = true;
    FleetSimulator sim(fc);
    return formatFleetReport(sim.run(trace, res));
}

// --- Tentpole: crash-resume bit-identity -----------------------------

TEST(FleetRecovery, CrashResumeMatrixIsBitIdentical)
{
    std::filesystem::remove_all(kArtifacts);
    const auto trace = recoveryTrace();
    const RouterPolicy policies[] = {
        RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
        RouterPolicy::DeadlineAware, RouterPolicy::CostAware};

    for (const RouterPolicy p : policies) {
        // The baseline runs with no durability machinery at all:
        // checkpointing must never perturb the simulation.
        FleetSimulator base(recoveryConfig(p));
        const std::string uninterrupted =
            formatFleetReport(base.run(trace));

        for (const std::int64_t crash_event : {30ll, 90ll}) {
            for (const unsigned threads : {1u, 2u, 4u}) {
                SCOPED_TRACE(std::string(routerPolicyName(p)) +
                             " crash@" + std::to_string(crash_event) +
                             " threads=" + std::to_string(threads));
                er::ThreadPool::setGlobalThreads(threads);
                const auto dir = kArtifacts /
                    (std::string(routerPolicyName(p)) + "-e" +
                     std::to_string(crash_event) + "-t" +
                     std::to_string(threads));
                FleetConfig fc = recoveryConfig(p);
                fc.journalDir = (dir / "journals").string();
                FleetDurabilityOptions dur;
                dur.crashAtEvent = crash_event;
                EXPECT_EQ(runCrashResume(fc, trace, dir, dur),
                          uninterrupted);
            }
        }
    }
    er::ThreadPool::setGlobalThreads(0);
    if (!::testing::Test::HasFailure())
        std::filesystem::remove_all(kArtifacts);
}

TEST(FleetRecovery, ResumesWithHedgedLegsAndTrippedBreaker)
{
    // A gray node 0 (12x slowdown, never crashed) with a 10 s per-try
    // timeout: its legs keep timing out, so the 2-failure breaker is
    // tripped and re-tripped throughout, hedges fire against the slow
    // primary, and the crash instants land while hedged legs are in
    // flight and node 0 is cooling down.  Resume must reproduce all
    // of it — in-flight legs, breaker state, retry budgets — exactly.
    std::filesystem::remove_all(kArtifacts);
    FleetConfig fc = recoveryConfig(RouterPolicy::RoundRobin);
    fc.nodeFaults.crashesPerHour = 0.0; // fail-stop off: gray only
    fc.nodeFaults.degradesPerHour = 0.0;
    fc.requestTimeout = 10.0;
    // Hedge early (at 10% of the deadline budget): the slow node-0
    // primaries are still in flight then, so hedges actually launch.
    fc.hedgeFraction = 0.9;
    fc.explicitSchedules.resize(fc.nodes.size());
    fc.explicitSchedules[0].slowdowns.push_back({0.0, 1e6, 12.0});

    const auto trace = recoveryTrace();
    FleetSimulator base(fc);
    const auto base_rep = base.run(trace);
    const std::string uninterrupted = formatFleetReport(base_rep);
    // The scenario must actually contain the hard state: hedged legs,
    // breaker trips (retries after node-0 timeouts), no crashes.
    EXPECT_GT(base_rep.hedgesLaunched, 0u);
    EXPECT_GT(base_rep.retries, 0u);
    EXPECT_GE(base_rep.nodes[0].timedOut,
              static_cast<std::size_t>(fc.healthFailureThreshold));
    EXPECT_EQ(base_rep.nodes[0].crashes, 0u);

    int idx = 0;
    for (const double crash_time : {15.0, 30.0}) {
        SCOPED_TRACE("crash at t=" + std::to_string(crash_time));
        FleetConfig jfc = fc;
        const auto dir =
            kArtifacts / ("hedged-t" + std::to_string(idx++));
        jfc.journalDir = (dir / "journals").string();
        FleetDurabilityOptions dur;
        dur.crashAtTime = crash_time;
        dur.checkpointEvery = 10;
        EXPECT_EQ(runCrashResume(jfc, trace, dir, dur),
                  uninterrupted);
    }
    if (!::testing::Test::HasFailure())
        std::filesystem::remove_all(kArtifacts);
}

// --- Gray failure + quantile-adaptive health -------------------------

TEST(FleetRecovery, GrayNodeIsEjectedByQuantileBreaker)
{
    // Node 0 is alive, responsive, and 10x slow: it completes every
    // leg, so the consecutive-failure breaker never fires.  Only the
    // latency-quantile breaker can see it.
    FleetConfig fc;
    fc.nodes.assign(3, NodeSpec{er::model::ModelId::DeepScaleR1_5B});
    fc.router = RouterPolicy::RoundRobin;
    fc.paranoid = true;
    fc.adaptiveHealth = true;
    fc.healthQuantile = 0.9;
    fc.healthLatencyMultiple = 2.0;
    fc.healthMinSamples = 4;
    fc.healthCooldown = 60.0;
    fc.explicitSchedules.resize(3);
    fc.explicitSchedules[0].slowdowns.push_back({0.0, 1e6, 10.0});

    er::Rng rng(11, "fleet-gray");
    auto trace = ServingSimulator::poissonTrace(rng, 36, 1.0, 96, 192);
    for (auto &r : trace)
        r.deadline = 120.0;

    FleetSimulator sim(fc);
    const auto rep = sim.run(trace);
    EXPECT_GE(rep.adaptiveEjections, 1u);
    EXPECT_EQ(rep.nodes[0].crashes, 0u); // gray, not fail-stop
    EXPECT_EQ(rep.served + rep.timedOut + rep.shed + rep.offloaded,
              rep.arrivals);
    // The report carries the ejection tally (printed only when the
    // adaptive breaker is on, so legacy goldens never change).
    EXPECT_NE(formatFleetReport(rep).find("adaptive-health ejections"),
              std::string::npos);
}

TEST(FleetRecovery, AdaptiveBreakerBeatsStaticUnderStraggler)
{
    // Same straggler fleet, breaker on vs. off: ejecting the gray
    // node reroutes work to healthy nodes and must win on goodput.
    FleetConfig fc;
    fc.nodes.assign(3, NodeSpec{er::model::ModelId::DeepScaleR1_5B});
    fc.router = RouterPolicy::RoundRobin;
    fc.paranoid = true;
    fc.healthCooldown = 1e6;
    fc.explicitSchedules.resize(3);
    // A moderate (5x) straggler: slow legs still *complete* early
    // enough to feed the latency quantile while arrivals are ongoing
    // (a harsher slowdown would only finish its first leg after the
    // arrival window closes, and ejecting then changes nothing), yet
    // 5x pushes the node past saturation so its queue — and its
    // deadline misses — grow for as long as the router keeps feeding
    // it.
    fc.explicitSchedules[0].slowdowns.push_back({0.0, 1e6, 5.0});

    er::Rng rng(13, "fleet-straggler");
    auto trace = ServingSimulator::poissonTrace(rng, 100, 1.2, 96, 192);
    for (auto &r : trace)
        r.deadline = 45.0;

    FleetSimulator stat(fc);
    const auto static_rep = stat.run(trace);

    fc.adaptiveHealth = true;
    fc.healthQuantile = 0.9;
    fc.healthLatencyMultiple = 2.0;
    fc.healthMinSamples = 4;
    FleetSimulator adap(fc);
    const auto adaptive_rep = adap.run(trace);

    EXPECT_GE(adaptive_rep.adaptiveEjections, 1u);
    EXPECT_GT(adaptive_rep.goodput, static_rep.goodput);
}

TEST(FleetRecovery, AdaptiveStateOffLeavesReportsUntouched)
{
    // With no slowdown windows and adaptive health off, the durable
    // run path must not perturb the legacy fleet arithmetic: the
    // plain run() and the run(trace, {}) overload agree exactly.
    const auto trace = recoveryTrace();
    FleetSimulator a(recoveryConfig(RouterPolicy::CostAware));
    FleetSimulator b(recoveryConfig(RouterPolicy::CostAware));
    EXPECT_EQ(formatFleetReport(a.run(trace)),
              formatFleetReport(
                  b.run(trace, FleetDurabilityOptions{})));
}

// --- Static breaker boundary behavior --------------------------------

/** Two nodes; node 0 is slowed so only its legs blow the per-try
 *  timeout; node 1 completes every leg comfortably. */
FleetConfig
breakerConfig(int threshold, er::Seconds cooldown, er::Seconds slow_until)
{
    FleetConfig fc;
    fc.nodes.assign(2, NodeSpec{er::model::ModelId::DeepScaleR1_5B});
    fc.router = RouterPolicy::RoundRobin;
    fc.paranoid = true;
    fc.maxRetries = 3;
    fc.retryBackoff = 0.25;
    fc.requestTimeout = 8.0; // ~3 s healthy service, ~50 s slowed
    fc.healthFailureThreshold = threshold;
    fc.healthCooldown = cooldown;
    fc.explicitSchedules.resize(2);
    fc.explicitSchedules[0].slowdowns.push_back(
        {0.0, slow_until, 20.0});
    return fc;
}

std::vector<ServerRequest>
spacedTrace(std::size_t n, er::Seconds gap)
{
    std::vector<ServerRequest> t(n);
    for (std::size_t i = 0; i < n; ++i) {
        t[i].arrival = gap * static_cast<double>(i);
        t[i].inputTokens = 64;
        t[i].outputTokens = 128;
    }
    return t;
}

TEST(FleetBreaker, TripsAtExactlyTheFailureThreshold)
{
    // With an effectively infinite cooldown, node 0 receives exactly
    // `threshold` legs — the trip happens on the Nth consecutive
    // failure, not before and not after.
    for (const int threshold : {3, 4}) {
        SCOPED_TRACE("threshold " + std::to_string(threshold));
        FleetConfig fc = breakerConfig(threshold, 1e9, 1e9);
        const auto trace = spacedTrace(14, 10.0);
        FleetSimulator sim(fc);
        const auto rep = sim.run(trace);
        EXPECT_EQ(rep.nodes[0].timedOut,
                  static_cast<std::size_t>(threshold));
        EXPECT_EQ(rep.nodes[0].served, 0u);
        // Every timed-out leg retries onto node 1; nothing is lost.
        EXPECT_EQ(rep.served, rep.arrivals);
        EXPECT_EQ(rep.nodes[1].served, rep.arrivals);
    }
}

TEST(FleetBreaker, HalfOpenProbeRecoversAHealedNode)
{
    // Node 0 is slow until t=100 and healthy after.  The breaker
    // trips during the slow window; once the cooldown lapses, the
    // half-open probe leg lands on a healed node, succeeds, and node
    // 0 rejoins the rotation for the rest of the run.
    FleetConfig fc = breakerConfig(3, 30.0, 100.0);
    const auto trace = spacedTrace(30, 10.0); // runs past t=290
    FleetSimulator sim(fc);
    const auto rep = sim.run(trace);
    EXPECT_GT(rep.nodes[0].served, 0u) << "node 0 never recovered";
    EXPECT_GE(rep.nodes[0].timedOut, 3u);
    EXPECT_EQ(rep.served, rep.arrivals);
}

TEST(FleetBreaker, FlappingNodeRetripsDuringDrain)
{
    // Node 0 never heals: every half-open probe window accumulates
    // `threshold` fresh failures and re-trips the breaker.  Evidence
    // of at least one full re-trip cycle is > threshold node-0
    // timeouts — and still zero node-0 completions.
    FleetConfig fc = breakerConfig(2, 25.0, 1e9);
    // Self-reported health flaps while the node is also cooling down:
    // drain windows from two sources must compose, not cancel.
    fc.explicitSchedules[0].flaps.push_back({40.0, 5.0});
    fc.explicitSchedules[0].flaps.push_back({80.0, 5.0});
    const auto trace = spacedTrace(30, 10.0);
    FleetSimulator sim(fc);
    const auto rep = sim.run(trace);
    EXPECT_GT(rep.nodes[0].timedOut, 2u) << "never re-tripped";
    EXPECT_EQ(rep.nodes[0].served, 0u);
    EXPECT_EQ(rep.served, rep.arrivals);
}

} // namespace
