/**
 * @file
 * Unit tests for the probability helpers backing the behavioural model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/distributions.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace er = edgereason;

TEST(NormCdf, KnownValues)
{
    EXPECT_NEAR(er::normCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(er::normCdf(1.959963985), 0.975, 1e-6);
    EXPECT_NEAR(er::normCdf(-1.959963985), 0.025, 1e-6);
}

TEST(NormInv, RoundTripsThroughCdf)
{
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                     0.999}) {
        EXPECT_NEAR(er::normCdf(er::normInv(p)), p, 1e-8)
            << "p = " << p;
    }
}

TEST(NormInv, RejectsDegenerateInputs)
{
    EXPECT_THROW(er::normInv(0.0), std::runtime_error);
    EXPECT_THROW(er::normInv(1.0), std::runtime_error);
}

TEST(Logistic, SymmetryAndLimits)
{
    EXPECT_DOUBLE_EQ(er::logistic(0.0), 0.5);
    EXPECT_NEAR(er::logistic(5.0) + er::logistic(-5.0), 1.0, 1e-12);
    EXPECT_GT(er::logistic(30.0), 0.9999);
}

TEST(CappedLogNormal, MatchesMonteCarlo)
{
    const double mean = 100.0;
    const double cv = 0.5;
    const double cap = 120.0;
    const double analytic = er::cappedLogNormalMean(mean, cv, cap);

    er::Rng rng(3);
    er::RunningStats s;
    for (int i = 0; i < 400000; ++i)
        s.add(std::min(cap, rng.logNormalMeanStd(mean, cv * mean)));
    EXPECT_NEAR(analytic, s.mean(), 0.25);
}

TEST(CappedLogNormal, CapFarAboveMeanIsIdentity)
{
    EXPECT_NEAR(er::cappedLogNormalMean(50.0, 0.3, 1e9), 50.0, 1e-6);
}

TEST(SolveLogNormalMeanForCap, InvertsCappedMean)
{
    const double cv = 0.45;
    const double cap = 128.0;
    const double target = 91.5; // the paper's 128T mean for the 1.5B
    const double m = er::solveLogNormalMeanForCap(target, cv, cap);
    EXPECT_GT(m, target); // cap pulls the mean down, so inflate
    EXPECT_NEAR(er::cappedLogNormalMean(m, cv, cap), target, 0.01);
}

TEST(SolveLogNormalMeanForCap, RejectsTargetAboveCap)
{
    EXPECT_THROW(er::solveLogNormalMeanForCap(200.0, 0.3, 128.0),
                 std::runtime_error);
}
