/**
 * @file
 * Fleet-scale event engine suite (DESIGN.md §15).  The tentpole
 * claim: the next-stop index, batched routing window, and streaming
 * trace source are pure performance work — every report they produce
 * is bit-identical to the legacy all-node-scan driver.  Covered here:
 *  - NodeStopIndex against a brute-force scan on adversarial update
 *    sequences (same FP lag predicate, same ascending-id order);
 *  - PoissonTraceStream against the materialized poissonTrace it
 *    reimplements, draw for draw;
 *  - the router-policy x fault-mix x thread-count bit-identity
 *    matrix, indexed vs `nodeIndex = false`;
 *  - crash-resume with the index live (plus cross-mode resumes: a
 *    checkpoint written by either driver restores under the other);
 *  - a streamed run against the same trace materialized.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "engine/server.hh"
#include "engine/trace_stream.hh"
#include "fleet/fleet.hh"
#include "fleet/node_faults.hh"
#include "fleet/stop_index.hh"
#include "hw/gpu_spec.hh"
#include "model/model_id.hh"

namespace er = edgereason;
using namespace er::fleet;
using er::engine::PoissonTraceStream;
using er::engine::ServerRequest;
using er::engine::ServingSimulator;

namespace {

// --- NodeStopIndex vs brute force ------------------------------------

TEST(NodeStopIndex, MatchesBruteForceScan)
{
    // Random update/query interleaving: the index must report the
    // exact node set a linear scan with the fleet's literal lag
    // predicate (`key + slack < target`) reports, in ascending id
    // order, and the same min key.
    constexpr int kNodes = 37;
    constexpr double kSlack = 1e-9;
    NodeStopIndex idx;
    idx.reset(kNodes);
    std::vector<double> keys(kNodes, NodeStopIndex::kNoStop);

    er::Rng rng(99, "stop-index-fuzz");
    for (int step = 0; step < 2000; ++step) {
        const int i =
            static_cast<int>(rng.uniform() * kNodes) % kNodes;
        // Mix of finite stop times (including duplicates, to stress
        // the id tie-break) and "parked" (+inf) nodes.
        const double key = rng.uniform() < 0.25
            ? NodeStopIndex::kNoStop
            : 1.0 + static_cast<double>(
                        static_cast<int>(rng.uniform() * 64.0));
        idx.update(static_cast<std::size_t>(i), key);
        keys[static_cast<std::size_t>(i)] = key;

        double brute_min = NodeStopIndex::kNoStop;
        for (const double k : keys)
            brute_min = std::min(brute_min, k);
        ASSERT_EQ(idx.minKey(), brute_min);

        const double target = 1.0 + rng.uniform() * 66.0;
        std::vector<int> got, want;
        idx.collectLagging(target, kSlack, got);
        for (int j = 0; j < kNodes; ++j)
            if (keys[static_cast<std::size_t>(j)] + kSlack < target)
                want.push_back(j);
        ASSERT_EQ(got, want) << "step " << step;
    }
}

// --- Streaming trace source vs materialized trace --------------------

TEST(TraceStream, MatchesMaterializedPoissonTrace)
{
    er::Rng a(55, "trace-stream");
    const auto trace =
        ServingSimulator::poissonTrace(a, 500, 3.0, 96, 256);

    PoissonTraceStream src(55, "trace-stream", 500, 3.0, 96, 256);
    ASSERT_EQ(src.totalRequests(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const ServerRequest r = src.next();
        ASSERT_EQ(r.arrival, trace[i].arrival) << i;
        ASSERT_EQ(r.inputTokens, trace[i].inputTokens) << i;
        ASSERT_EQ(r.outputTokens, trace[i].outputTokens) << i;
    }
}

// --- Bit-identity matrix: indexed vs legacy driver -------------------

/** Fault mixes the matrix sweeps; each stresses a different index
 *  maintenance path (refresh-on-advance only; crash/reboot edges;
 *  gray slowdowns + adaptive ejections + flaps). */
enum class FaultMix { Healthy, Crashy, Gray };

const char *
mixName(FaultMix m)
{
    switch (m) {
      case FaultMix::Healthy:
        return "healthy";
      case FaultMix::Crashy:
        return "crashy";
      case FaultMix::Gray:
        return "gray";
    }
    return "?";
}

FleetConfig
matrixConfig(RouterPolicy p, FaultMix mix, bool indexed)
{
    FleetConfig fc;
    fc.nodes.assign(6, NodeSpec{er::model::ModelId::DeepScaleR1_5B});
    fc.server.maxBatch = 6;
    fc.router = p;
    fc.nodeIndex = indexed;
    fc.paranoid = true; // includes the index/brute cross-check
    fc.maxRetries = 3;
    fc.retryBackoff = 0.5;
    fc.hedgeFraction = 0.3;
    fc.requestTimeout = 45.0;
    fc.healthFailureThreshold = 2;
    fc.healthCooldown = 12.0;
    switch (mix) {
      case FaultMix::Healthy:
        break;
      case FaultMix::Crashy:
        fc.nodeFaults.seed = 0xD00B;
        fc.nodeFaults.horizon = 300.0;
        fc.nodeFaults.crashesPerHour = 120.0;
        fc.nodeFaults.meanRebootSeconds = 10.0;
        fc.nodeFaults.degradesPerHour = 45.0;
        fc.nodeFaults.meanDegradeSeconds = 15.0;
        break;
      case FaultMix::Gray:
        fc.adaptiveHealth = true;
        fc.healthQuantile = 0.9;
        fc.healthLatencyMultiple = 2.0;
        fc.healthMinSamples = 4;
        fc.healthCooldown = 60.0;
        fc.nodeFaults.seed = 0x6EA7;
        fc.nodeFaults.horizon = 300.0;
        fc.nodeFaults.slowdownsPerHour = 90.0;
        fc.nodeFaults.meanSlowdownSeconds = 30.0;
        fc.nodeFaults.slowdownMultiplier = 8.0;
        fc.nodeFaults.flapsPerHour = 60.0;
        fc.nodeFaults.meanFlapSeconds = 5.0;
        break;
    }
    return fc;
}

std::vector<ServerRequest>
matrixTrace()
{
    er::Rng rng(7, "fleet-scale-matrix");
    auto t = ServingSimulator::poissonTrace(rng, 40, 1.5, 96, 224);
    for (auto &r : t)
        r.deadline = 75.0;
    return t;
}

TEST(FleetScale, IndexMatrixIsBitIdentical)
{
    const auto trace = matrixTrace();
    const RouterPolicy policies[] = {
        RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
        RouterPolicy::DeadlineAware, RouterPolicy::CostAware};

    for (const RouterPolicy p : policies) {
        for (const FaultMix mix :
             {FaultMix::Healthy, FaultMix::Crashy, FaultMix::Gray}) {
            // The legacy scan driver is the reference; one report,
            // any thread count (its own identity is test_fleet's
            // claim).
            FleetSimulator legacy(matrixConfig(p, mix, false));
            const std::string want =
                formatFleetReport(legacy.run(trace));
            for (const unsigned threads : {1u, 2u, 4u}) {
                SCOPED_TRACE(std::string(routerPolicyName(p)) + "/" +
                             mixName(mix) + " threads=" +
                             std::to_string(threads));
                er::ThreadPool::setGlobalThreads(threads);
                FleetSimulator indexed(matrixConfig(p, mix, true));
                EXPECT_EQ(formatFleetReport(indexed.run(trace)),
                          want);
            }
            er::ThreadPool::setGlobalThreads(0);
        }
    }
}

// --- Crash-resume with the index live --------------------------------

const std::filesystem::path kArtifacts = "fleet-scale-artifacts";

std::string
runCrashResume(const FleetConfig &crash_fc, const FleetConfig &res_fc,
               const std::vector<ServerRequest> &trace,
               const std::filesystem::path &dir,
               std::int64_t crash_event)
{
    FleetDurabilityOptions dur;
    dur.checkpointDir = (dir / "ckpt").string();
    dur.checkpointEvery = 20;
    dur.crashAtEvent = crash_event;
    bool crashed = false;
    try {
        FleetSimulator sim(crash_fc);
        sim.run(trace, dur);
    } catch (const FleetSimulatedCrash &) {
        crashed = true;
    }
    EXPECT_TRUE(crashed) << "crash point was never reached";

    FleetDurabilityOptions res;
    res.checkpointDir = dur.checkpointDir;
    res.checkpointEvery = dur.checkpointEvery;
    res.resume = true;
    FleetSimulator sim(res_fc);
    return formatFleetReport(sim.run(trace, res));
}

TEST(FleetScale, CrashResumeWithIndexIsBitIdentical)
{
    // Two crash points with the index live on both sides, plus the
    // cross-mode legs: the index is derived state, deliberately
    // outside the checkpoint fingerprint, so a checkpoint written by
    // either driver must restore under the other.
    std::filesystem::remove_all(kArtifacts);
    const auto trace = matrixTrace();
    const auto cfg = [](bool indexed) {
        return matrixConfig(RouterPolicy::LeastLoaded,
                            FaultMix::Crashy, indexed);
    };
    FleetSimulator base(cfg(true));
    const std::string uninterrupted =
        formatFleetReport(base.run(trace));

    int leg = 0;
    for (const std::int64_t crash_event : {30ll, 90ll}) {
        for (const bool crash_indexed : {true, false}) {
            for (const bool resume_indexed : {true, false}) {
                SCOPED_TRACE("crash@" + std::to_string(crash_event) +
                             (crash_indexed ? " idx" : " scan") +
                             "->" +
                             (resume_indexed ? "idx" : "scan"));
                const auto dir =
                    kArtifacts / ("leg-" + std::to_string(leg++));
                EXPECT_EQ(runCrashResume(cfg(crash_indexed),
                                         cfg(resume_indexed), trace,
                                         dir, crash_event),
                          uninterrupted);
            }
        }
    }
    if (!::testing::Test::HasFailure())
        std::filesystem::remove_all(kArtifacts);
}

// --- Streaming run vs materialized run -------------------------------

TEST(FleetScale, StreamedRunMatchesMaterialized)
{
    // Same trace parameters, one driver fed the vector and one fed
    // the stream: identical reports, including the exact latency
    // percentiles (the streamed fold re-sorts by request id before
    // the same summation).
    const auto mk = [] {
        FleetConfig fc;
        fc.nodes.assign(4,
                        NodeSpec{er::model::ModelId::DeepScaleR1_5B});
        fc.server.maxBatch = 6;
        fc.router = RouterPolicy::LeastLoaded;
        fc.paranoid = true;
        fc.hedgeFraction = 0.3;
        fc.requestTimeout = 45.0;
        return fc;
    };
    er::Rng rng(21, "fleet-scale-stream");
    auto trace = ServingSimulator::poissonTrace(rng, 60, 2.0, 96, 224);
    for (auto &r : trace)
        r.deadline = 75.0;
    FleetSimulator vec(mk());
    const std::string want = formatFleetReport(vec.run(trace));

    PoissonTraceStream src(21, "fleet-scale-stream", 60, 2.0, 96, 224);
    src.setDeadline(75.0);
    FleetSimulator streamed(mk());
    EXPECT_EQ(formatFleetReport(streamed.runStream(src)), want);
}

} // namespace
