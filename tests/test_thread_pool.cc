/**
 * @file
 * Tests for the work-stealing thread pool: lifecycle, full coverage of
 * iteration spaces, order-independent results, stealing under
 * imbalance, exception propagation, nested calls, and the global-pool
 * configuration knobs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace er = edgereason;
using er::ThreadPool;

TEST(ThreadPool, StartupShutdownAllSizes)
{
    for (unsigned threads : {1u, 2u, 3u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
    }
    // Repeated churn must not leak or deadlock.
    for (int i = 0; i < 20; ++i)
        ThreadPool pool(4);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        const std::size_t n = 10000;
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ParallelForRespectsExplicitGrain)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(
        1000,
        [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        64);
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOneIterations)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelMapPreservesInputOrder)
{
    ThreadPool pool(4);
    std::vector<int> in(5000);
    std::iota(in.begin(), in.end(), 0);
    const auto out =
        pool.parallelMap(in, [](int v) { return 3 * v + 1; });
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], 3 * static_cast<int>(i) + 1);
}

TEST(ThreadPool, ImbalancedWorkCompletes)
{
    // A few indices are ~1000x heavier than the rest; the range
    // splitting plus stealing must still retire everything.
    ThreadPool pool(4);
    std::atomic<long long> total{0};
    pool.parallelFor(
        512,
        [&](std::size_t i) {
            long long acc = 0;
            const int spins = (i % 128 == 0) ? 200000 : 200;
            for (int k = 0; k < spins; ++k)
                acc += k ^ static_cast<long long>(i);
            total.fetch_add(acc ? 1 : 1, std::memory_order_relaxed);
        },
        1);
    EXPECT_EQ(total.load(), 512);
}

TEST(ThreadPool, StealCounterAdvancesAcrossManyJobs)
{
    // Stealing is scheduling-dependent, so drive many imbalanced jobs
    // and accept the (vanishingly unlikely) zero-steal outcome only on
    // effectively single-threaded machines.
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        pool.parallelFor(
            256,
            [&](std::size_t i) {
                volatile long long acc = 0;
                const int spins = (i < 8) ? 20000 : 50;
                for (int k = 0; k < spins; ++k)
                    acc += k;
            },
            1);
    }
    if (std::thread::hardware_concurrency() > 1)
        EXPECT_GT(pool.steals(), 0u);
    else
        SUCCEED() << "single-core host: steals=" << pool.steals();
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(1000,
                         [](std::size_t i) {
                             if (i == 137)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);

    // The pool must stay usable after a failed job.
    std::atomic<int> ran{0};
    pool.parallelFor(100, [&](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, NestedParallelForRunsSerialAndCorrect)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64 * 32);
    pool.parallelFor(64, [&](std::size_t outer) {
        // Nested call: must fall back to serial inline execution
        // instead of deadlocking the worker.
        pool.parallelFor(32, [&](std::size_t inner) {
            hits[outer * 32 + inner].fetch_add(
                1, std::memory_order_relaxed);
        });
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, IndexDerivedRandomnessIsThreadCountInvariant)
{
    // The determinism contract: bodies that derive their randomness
    // from the index produce bit-identical results at any pool size.
    auto run = [](unsigned threads) {
        ThreadPool pool(threads);
        std::vector<double> out(2000);
        pool.parallelFor(out.size(), [&](std::size_t i) {
            er::Rng rng(42, "tp-test/q" + std::to_string(i));
            out[i] = rng.gaussian(0.0, 1.0) + rng.uniform();
        });
        return out;
    };
    const auto serial = run(1);
    for (unsigned threads : {2u, 4u, 7u}) {
        const auto parallel = run(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(parallel[i], serial[i])
                << "index " << i << " at " << threads << " threads";
    }
}

TEST(ThreadPool, ConcurrentCallersShareThePool)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    std::vector<std::thread> callers;
    for (int c = 0; c < 3; ++c) {
        callers.emplace_back([&] {
            pool.parallelFor(500, [&](std::size_t) {
                total.fetch_add(1, std::memory_order_relaxed);
            });
        });
    }
    for (auto &t : callers)
        t.join();
    EXPECT_EQ(total.load(), 1500);
}

TEST(ThreadPool, GlobalPoolConfiguration)
{
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::global().threadCount(), 3u);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::global().threadCount(), 1u);
    // 0 = re-resolve environment/hardware.
    ThreadPool::setGlobalThreads(0);
    EXPECT_GE(ThreadPool::global().threadCount(), 1u);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvironment)
{
    ::setenv("EDGEREASON_THREADS", "5", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 5u);
    ::setenv("EDGEREASON_THREADS", "bogus", 1);
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ::unsetenv("EDGEREASON_THREADS");
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}
