/**
 * @file
 * Tests for the `serve` subcommand flag parser.  parseServeOptions()
 * is a pure function (no exits, no printing), so malformed input —
 * which previously died inside the CLI binary — is directly
 * unit-testable here.
 */

#include <gtest/gtest.h>

#include "cli/serve_options.hh"

namespace er = edgereason;
using er::cli::ServeOptions;
using er::cli::parseServeOptions;
using er::engine::DegradeMode;
using er::engine::SchedulerPolicy;

namespace {

std::optional<ServeOptions>
parse(std::initializer_list<const char *> toks, std::string *err)
{
    std::vector<std::string> args;
    for (const char *t : toks)
        args.emplace_back(t);
    return parseServeOptions(args, err);
}

TEST(ServeOptions, EmptyArgsYieldDefaults)
{
    std::string err;
    const auto o = parse({}, &err);
    ASSERT_TRUE(o.has_value()) << err;
    EXPECT_EQ(o->model, "DeepScaleR-1.5B");
    EXPECT_FALSE(o->quant);
    EXPECT_EQ(o->requests, 100);
    EXPECT_DOUBLE_EQ(o->qps, 0.1);
    EXPECT_EQ(o->maxBatch, 30);
    EXPECT_EQ(o->prefillChunk, 0);
    EXPECT_EQ(o->scheduler, SchedulerPolicy::Fcfs);
    EXPECT_EQ(o->degrade, DegradeMode::None);
    EXPECT_EQ(o->degradeBudget, 256);
    EXPECT_FALSE(o->faults);
    EXPECT_EQ(o->faultSeed, 0xFA17u);
    EXPECT_FALSE(o->exactSteps);
}

TEST(ServeOptions, ParsesFullFlagSet)
{
    std::string err;
    const auto o = parse(
        {"--model", "DSR1-Llama-8B", "--quant", "--requests", "250",
         "--qps", "1.5", "--mean-in", "200", "--mean-out", "768",
         "--seed", "9", "--deadline", "45", "--max-batch", "12",
         "--prefill-chunk", "256", "--scheduler", "edf", "--degrade",
         "budget", "--degrade-budget", "128", "--faults",
         "--fault-seed", "77", "--ambient", "40", "--brownout-rate",
         "6", "--kv-shrink-rate", "3", "--fallback-model",
         "DeepScaleR-1.5B", "--fallback-quant", "--threads", "4"},
        &err);
    ASSERT_TRUE(o.has_value()) << err;
    EXPECT_EQ(o->model, "DSR1-Llama-8B");
    EXPECT_TRUE(o->quant);
    EXPECT_EQ(o->requests, 250);
    EXPECT_DOUBLE_EQ(o->qps, 1.5);
    EXPECT_DOUBLE_EQ(o->meanIn, 200.0);
    EXPECT_DOUBLE_EQ(o->meanOut, 768.0);
    EXPECT_EQ(o->seed, 9);
    EXPECT_DOUBLE_EQ(o->deadline, 45.0);
    EXPECT_EQ(o->maxBatch, 12);
    EXPECT_EQ(o->prefillChunk, 256);
    EXPECT_EQ(o->scheduler, SchedulerPolicy::Edf);
    EXPECT_EQ(o->degrade, DegradeMode::Budget);
    EXPECT_EQ(o->degradeBudget, 128);
    EXPECT_TRUE(o->faults);
    EXPECT_EQ(o->faultSeed, 77u);
    EXPECT_DOUBLE_EQ(o->ambient, 40.0);
    EXPECT_DOUBLE_EQ(o->brownoutRate, 6.0);
    EXPECT_DOUBLE_EQ(o->kvShrinkRate, 3.0);
    EXPECT_EQ(o->fallbackModel, "DeepScaleR-1.5B");
    EXPECT_TRUE(o->fallbackQuant);
    EXPECT_EQ(o->threads, 4);
}

TEST(ServeOptions, ParsesEachSchedulerPolicy)
{
    std::string err;
    EXPECT_EQ(parse({"--scheduler", "fcfs"}, &err)->scheduler,
              SchedulerPolicy::Fcfs);
    EXPECT_EQ(parse({"--scheduler", "edf"}, &err)->scheduler,
              SchedulerPolicy::Edf);
    EXPECT_EQ(parse({"--scheduler", "spjf"}, &err)->scheduler,
              SchedulerPolicy::Spjf);
}

TEST(ServeOptions, RejectsMalformedScheduler)
{
    std::string err;
    EXPECT_FALSE(parse({"--scheduler", "sjf"}, &err).has_value());
    EXPECT_NE(err.find("--scheduler"), std::string::npos);
    EXPECT_NE(err.find("sjf"), std::string::npos);
    EXPECT_FALSE(parse({"--scheduler", "EDF"}, &err).has_value());
    EXPECT_FALSE(parse({"--scheduler"}, &err).has_value());
    EXPECT_NE(err.find("missing value"), std::string::npos);
}

TEST(ServeOptions, RejectsMalformedPrefillChunk)
{
    std::string err;
    EXPECT_FALSE(parse({"--prefill-chunk", "-5"}, &err).has_value());
    EXPECT_NE(err.find("--prefill-chunk"), std::string::npos);
    EXPECT_FALSE(parse({"--prefill-chunk", "abc"}, &err).has_value());
    EXPECT_NE(err.find("not an integer"), std::string::npos);
    EXPECT_FALSE(parse({"--prefill-chunk", "12x"}, &err).has_value());
    // 0 (chunking disabled) stays valid.
    EXPECT_EQ(parse({"--prefill-chunk", "0"}, &err)->prefillChunk, 0);
}

TEST(ServeOptions, RejectsOutOfRangeNumbers)
{
    std::string err;
    EXPECT_FALSE(parse({"--max-batch", "0"}, &err).has_value());
    EXPECT_FALSE(parse({"--requests", "0"}, &err).has_value());
    EXPECT_FALSE(parse({"--deadline", "-1"}, &err).has_value());
    EXPECT_FALSE(parse({"--qps", "0"}, &err).has_value());
    EXPECT_NE(err.find("--qps"), std::string::npos);
    EXPECT_FALSE(parse({"--qps", "nope"}, &err).has_value());
    EXPECT_FALSE(parse({"--degrade-budget", "0"}, &err).has_value());
    EXPECT_FALSE(parse({"--mean-out", "0.5"}, &err).has_value());
}

TEST(ServeOptions, RejectsUnknownAndMalformedTokens)
{
    std::string err;
    EXPECT_FALSE(parse({"--warp-speed", "9"}, &err).has_value());
    EXPECT_NE(err.find("--warp-speed"), std::string::npos);
    EXPECT_FALSE(parse({"serve"}, &err).has_value());
    EXPECT_NE(err.find("unexpected argument"), std::string::npos);
    EXPECT_FALSE(parse({"--degrade", "sometimes"}, &err).has_value());
    EXPECT_NE(err.find("--degrade"), std::string::npos);
}

TEST(ServeOptions, BooleanFlagsDoNotConsumeValues)
{
    std::string err;
    const auto o =
        parse({"--faults", "--max-batch", "4", "--quant"}, &err);
    ASSERT_TRUE(o.has_value()) << err;
    EXPECT_TRUE(o->faults);
    EXPECT_TRUE(o->quant);
    EXPECT_EQ(o->maxBatch, 4);
}

TEST(ServeOptions, ParsesDurabilityFlags)
{
    std::string err;
    const auto o = parse({"--checkpoint-dir", "/tmp/ck",
                          "--checkpoint-every", "64", "--paranoid",
                          "--crash-at-step", "100"},
                         &err);
    ASSERT_TRUE(o.has_value()) << err;
    EXPECT_EQ(o->checkpointDir, "/tmp/ck");
    EXPECT_EQ(o->checkpointEvery, 64ull);
    EXPECT_TRUE(o->paranoid);
    EXPECT_FALSE(o->resume);
    EXPECT_EQ(o->crashAtStep, 100);
    EXPECT_EQ(o->crashAtTime, -1.0);
    EXPECT_EQ(o->crashRate, 0.0);
}

TEST(ServeOptions, ResumeImpliesCheckpointDir)
{
    std::string err;
    const auto o = parse({"--resume", "/tmp/ck"}, &err);
    ASSERT_TRUE(o.has_value()) << err;
    EXPECT_TRUE(o->resume);
    EXPECT_EQ(o->checkpointDir, "/tmp/ck");
}

TEST(ServeOptions, CrashInjectionNeedsACheckpointDir)
{
    // A crash without durability would lose the run: the parser
    // rejects each crash flag unless a checkpoint dir is given.
    std::string err;
    EXPECT_FALSE(parse({"--crash-at-step", "5"}, &err).has_value());
    EXPECT_NE(err.find("--checkpoint-dir"), std::string::npos);
    EXPECT_FALSE(parse({"--crash-at-time", "10"}, &err).has_value());
    EXPECT_FALSE(parse({"--crash-rate", "0.5"}, &err).has_value());
    EXPECT_TRUE(parse({"--crash-rate", "0.5", "--checkpoint-dir",
                       "/tmp/ck"},
                      &err)
                    .has_value());
}

TEST(ServeOptions, RejectsMalformedDurabilityValues)
{
    std::string err;
    EXPECT_FALSE(
        parse({"--checkpoint-every", "0"}, &err).has_value());
    EXPECT_FALSE(
        parse({"--crash-at-step", "-2"}, &err).has_value());
    EXPECT_FALSE(
        parse({"--crash-rate", "-1"}, &err).has_value());
    EXPECT_FALSE(parse({"--resume"}, &err).has_value());
    EXPECT_NE(err.find("--resume"), std::string::npos);
}

TEST(ServeOptions, ParsesShardedReplications)
{
    std::string err;
    const auto o = parse({"--replications", "8", "--shards", "4"},
                         &err);
    ASSERT_TRUE(o.has_value()) << err;
    EXPECT_EQ(o->replications, 8);
    EXPECT_EQ(o->shards, 4);

    // Defaults: one replication, shards auto (one per trace).
    const auto d = parse({}, &err);
    ASSERT_TRUE(d.has_value()) << err;
    EXPECT_EQ(d->replications, 1);
    EXPECT_EQ(d->shards, 0);
}

TEST(ServeOptions, ShardsNeedReplications)
{
    std::string err;
    EXPECT_FALSE(parse({"--shards", "4"}, &err).has_value());
    EXPECT_NE(err.find("--replications"), std::string::npos);
}

TEST(ServeOptions, ShardedModeExcludesPerRunMachinery)
{
    // runSharded() executes plain runs: no fault plan, no
    // durability, no fallback engine.  The parser rejects the
    // combinations rather than silently dropping flags.
    std::string err;
    EXPECT_FALSE(parse({"--replications", "4", "--faults"}, &err)
                     .has_value());
    EXPECT_FALSE(parse({"--replications", "4", "--checkpoint-dir",
                        "/tmp/ck"},
                       &err)
                     .has_value());
    EXPECT_FALSE(parse({"--replications", "4", "--resume", "/tmp/ck"},
                       &err)
                     .has_value());
    EXPECT_FALSE(parse({"--replications", "4", "--degrade",
                        "fallback"},
                       &err)
                     .has_value());
    EXPECT_FALSE(parse({"--replications", "0"}, &err).has_value());
    EXPECT_TRUE(parse({"--replications", "4", "--degrade", "budget"},
                      &err)
                    .has_value())
        << err;
}

} // namespace

TEST(ServeOptions, ParsesExactStepsFlag)
{
    std::string err;
    const auto o = parse({"--exact-steps"}, &err);
    ASSERT_TRUE(o.has_value()) << err;
    EXPECT_TRUE(o->exactSteps);

    // A boolean flag must not consume a following token as its value.
    const auto o2 = parse({"--exact-steps", "--qps", "2.0"}, &err);
    ASSERT_TRUE(o2.has_value()) << err;
    EXPECT_TRUE(o2->exactSteps);
    EXPECT_DOUBLE_EQ(o2->qps, 2.0);
}

TEST(ServeOptions, RejectsZeroCountFlags)
{
    // Zero replications/shards/fleet are nonsense; each must be a
    // clear parse error, not a silently-degenerate run.
    std::string err;
    EXPECT_FALSE(parse({"--replications", "0"}, &err).has_value());
    EXPECT_NE(err.find("--replications"), std::string::npos) << err;
    EXPECT_FALSE(parse({"--shards", "0"}, &err).has_value());
    EXPECT_NE(err.find("--shards"), std::string::npos) << err;
    EXPECT_FALSE(parse({"--fleet", "0"}, &err).has_value());
    EXPECT_NE(err.find("--fleet"), std::string::npos) << err;
}

TEST(ServeOptions, ParsesFleetFlags)
{
    std::string err;
    const auto o = parse(
        {"--fleet", "4", "--router", "deadline", "--hetero",
         "--node-faults", "--node-crash-rate", "6", "--node-reboot",
         "12.5", "--node-degrade-rate", "3", "--node-degrade-mean",
         "45", "--retry", "5", "--retry-backoff", "0.5",
         "--request-timeout", "20", "--hedge", "0.25", "--cloud",
         "o4-mini", "--cloud-rtt", "0.2", "--fleet-journals", "/tmp/j"},
        &err);
    ASSERT_TRUE(o.has_value()) << err;
    EXPECT_EQ(o->fleet, 4);
    EXPECT_EQ(o->router, er::fleet::RouterPolicy::DeadlineAware);
    EXPECT_TRUE(o->hetero);
    EXPECT_TRUE(o->nodeFaults);
    EXPECT_DOUBLE_EQ(o->nodeCrashRate, 6.0);
    EXPECT_DOUBLE_EQ(o->nodeReboot, 12.5);
    EXPECT_DOUBLE_EQ(o->nodeDegradeRate, 3.0);
    EXPECT_DOUBLE_EQ(o->nodeDegradeMean, 45.0);
    EXPECT_EQ(o->retry, 5);
    EXPECT_DOUBLE_EQ(o->retryBackoff, 0.5);
    EXPECT_DOUBLE_EQ(o->requestTimeout, 20.0);
    EXPECT_DOUBLE_EQ(o->hedge, 0.25);
    EXPECT_EQ(o->cloud, "o4-mini");
    EXPECT_DOUBLE_EQ(o->cloudRtt, 0.2);
    EXPECT_EQ(o->fleetJournals, "/tmp/j");
}

TEST(ServeOptions, RejectsMalformedFleetValues)
{
    std::string err;
    EXPECT_FALSE(parse({"--fleet", "2", "--router", "zigzag"}, &err)
                     .has_value());
    EXPECT_NE(err.find("--router"), std::string::npos) << err;
    EXPECT_FALSE(parse({"--fleet", "2", "--cloud", "gpt-99"}, &err)
                     .has_value());
    EXPECT_NE(err.find("--cloud"), std::string::npos) << err;
    EXPECT_FALSE(parse({"--fleet", "2", "--hedge", "1.5"}, &err)
                     .has_value());
    EXPECT_NE(err.find("--hedge"), std::string::npos) << err;
}

TEST(ServeOptions, FleetExcludesSingleRunMachinery)
{
    // The fleet path owns faults and routing; the single-run flags
    // must not silently combine with it.  (Durability now composes:
    // see FleetComposesWithDurability.)
    std::string err;
    EXPECT_FALSE(
        parse({"--fleet", "2", "--replications", "4"}, &err)
            .has_value());
    EXPECT_FALSE(
        parse({"--fleet", "2", "--faults"}, &err).has_value());
    EXPECT_FALSE(
        parse({"--fleet", "2", "--crash-rate", "1",
               "--checkpoint-dir", "/tmp/x"}, &err)
            .has_value());
    EXPECT_NE(err.find("--crash-at-event"), std::string::npos) << err;
    EXPECT_FALSE(
        parse({"--fleet", "2", "--crash-at-step", "5",
               "--checkpoint-dir", "/tmp/x"}, &err)
            .has_value());
    EXPECT_FALSE(
        parse({"--fleet", "2", "--scheduler", "spjf"}, &err)
            .has_value());
    EXPECT_FALSE(
        parse({"--fleet", "2", "--degrade", "fallback"}, &err)
            .has_value());
}

TEST(ServeOptions, FleetComposesWithDurability)
{
    // DESIGN.md §14: fleet runs checkpoint, resume, and inject
    // fleet-event crashes with the same flags as single-node runs.
    std::string err;
    const auto o = parse({"--fleet", "3", "--checkpoint-dir",
                          "/tmp/fck", "--checkpoint-every", "32",
                          "--crash-at-event", "100", "--paranoid"},
                         &err);
    ASSERT_TRUE(o.has_value()) << err;
    EXPECT_EQ(o->checkpointDir, "/tmp/fck");
    EXPECT_EQ(o->checkpointEvery, 32ull);
    EXPECT_EQ(o->crashAtEvent, 100);
    EXPECT_TRUE(o->paranoid);

    const auto r = parse({"--fleet", "3", "--resume", "/tmp/fck"},
                         &err);
    ASSERT_TRUE(r.has_value()) << err;
    EXPECT_TRUE(r->resume);
    EXPECT_EQ(r->checkpointDir, "/tmp/fck");

    const auto t = parse({"--fleet", "3", "--crash-at-time", "250",
                          "--checkpoint-dir", "/tmp/fck"},
                         &err);
    ASSERT_TRUE(t.has_value()) << err;
    EXPECT_DOUBLE_EQ(t->crashAtTime, 250.0);

    // Fleet crash injection still needs somewhere to checkpoint...
    EXPECT_FALSE(parse({"--fleet", "3", "--crash-at-event", "100"},
                       &err)
                     .has_value());
    EXPECT_NE(err.find("--checkpoint-dir"), std::string::npos) << err;
    // ...and the fleet-event coordinate means nothing single-node.
    EXPECT_FALSE(parse({"--crash-at-event", "100", "--checkpoint-dir",
                        "/tmp/ck"},
                       &err)
                     .has_value());
    EXPECT_NE(err.find("--fleet"), std::string::npos) << err;
}

TEST(ServeOptions, ParsesGrayFailureAndAdaptiveHealthFlags)
{
    std::string err;
    const auto o = parse(
        {"--fleet", "4", "--node-slowdown-rate", "2",
         "--node-slowdown-mean", "120", "--node-slowdown-mult", "10",
         "--node-flap-rate", "6", "--node-flap-mean", "4",
         "--adaptive-health", "--health-quantile", "0.9",
         "--health-multiple", "2.5", "--adaptive-timeout", "4"},
        &err);
    ASSERT_TRUE(o.has_value()) << err;
    EXPECT_DOUBLE_EQ(o->nodeSlowdownRate, 2.0);
    EXPECT_DOUBLE_EQ(o->nodeSlowdownMean, 120.0);
    EXPECT_DOUBLE_EQ(o->nodeSlowdownMult, 10.0);
    EXPECT_DOUBLE_EQ(o->nodeFlapRate, 6.0);
    EXPECT_DOUBLE_EQ(o->nodeFlapMean, 4.0);
    EXPECT_TRUE(o->adaptiveHealth);
    EXPECT_DOUBLE_EQ(o->healthQuantile, 0.9);
    EXPECT_DOUBLE_EQ(o->healthMultiple, 2.5);
    EXPECT_DOUBLE_EQ(o->adaptiveTimeout, 4.0);
}

TEST(ServeOptions, RejectsMalformedGrayFailureValues)
{
    std::string err;
    // A multiplier of 1 is "no slowdown"; <= 1 is a config mistake.
    EXPECT_FALSE(parse({"--fleet", "2", "--node-slowdown-rate", "2",
                        "--node-slowdown-mult", "1"},
                       &err)
                     .has_value());
    EXPECT_NE(err.find("--node-slowdown-mult"), std::string::npos)
        << err;
    EXPECT_FALSE(parse({"--fleet", "2", "--node-slowdown-rate", "2",
                        "--node-slowdown-mean", "0"},
                       &err)
                     .has_value());
    EXPECT_FALSE(parse({"--fleet", "2", "--node-flap-rate", "2",
                        "--node-flap-mean", "0"},
                       &err)
                     .has_value());
    EXPECT_FALSE(parse({"--fleet", "2", "--adaptive-health",
                        "--health-quantile", "0"},
                       &err)
                     .has_value());
    EXPECT_NE(err.find("--health-quantile"), std::string::npos) << err;
    EXPECT_FALSE(parse({"--fleet", "2", "--adaptive-health",
                        "--health-multiple", "1"},
                       &err)
                     .has_value());
    // --adaptive-timeout derives its cap from the streamed quantiles.
    EXPECT_FALSE(parse({"--fleet", "2", "--adaptive-timeout", "4"},
                       &err)
                     .has_value());
    EXPECT_NE(err.find("--adaptive-health"), std::string::npos) << err;
    // Gray-failure and adaptive flags are fleet-scoped.
    EXPECT_FALSE(parse({"--node-slowdown-rate", "2"}, &err)
                     .has_value());
    EXPECT_NE(err.find("--fleet"), std::string::npos) << err;
    EXPECT_FALSE(parse({"--adaptive-health"}, &err).has_value());
    EXPECT_NE(err.find("--fleet"), std::string::npos) << err;
}

TEST(ServeOptions, RejectsHedgeOutsideUnitInterval)
{
    // A hedge fraction of 1 waits the whole deadline budget: the
    // hedge can never fire, so [0, 1) is enforced with both ends
    // named in the message.
    std::string err;
    EXPECT_FALSE(parse({"--fleet", "2", "--hedge", "1.0"}, &err)
                     .has_value());
    EXPECT_NE(err.find("--hedge"), std::string::npos) << err;
    EXPECT_NE(err.find("[0, 1)"), std::string::npos) << err;
    EXPECT_FALSE(parse({"--fleet", "2", "--hedge", "-0.1"}, &err)
                     .has_value());
    EXPECT_FALSE(parse({"--fleet", "2", "--hedge", "nan"}, &err)
                     .has_value());
    EXPECT_TRUE(parse({"--fleet", "2", "--hedge", "0.99"}, &err)
                    .has_value())
        << err;
    EXPECT_TRUE(parse({"--fleet", "2", "--hedge", "0"}, &err)
                    .has_value())
        << err;
}

TEST(ServeOptions, RejectsNegativeCloudRttAndRetryBackoff)
{
    std::string err;
    EXPECT_FALSE(parse({"--fleet", "2", "--cloud", "o4-mini",
                        "--cloud-rtt", "-0.5"},
                       &err)
                     .has_value());
    EXPECT_NE(err.find("--cloud-rtt"), std::string::npos) << err;
    EXPECT_NE(err.find("non-negative"), std::string::npos) << err;
    EXPECT_FALSE(parse({"--fleet", "2", "--retry-backoff", "-1"},
                       &err)
                     .has_value());
    EXPECT_NE(err.find("--retry-backoff"), std::string::npos) << err;
    EXPECT_NE(err.find("non-negative"), std::string::npos) << err;
    EXPECT_FALSE(parse({"--fleet", "2", "--retry-backoff", "junk"},
                       &err)
                     .has_value());
    EXPECT_NE(err.find("not a number"), std::string::npos) << err;
}

TEST(ServeOptions, FleetFlagsNeedFleet)
{
    std::string err;
    EXPECT_FALSE(parse({"--router", "least"}, &err).has_value());
    EXPECT_NE(err.find("--fleet"), std::string::npos) << err;
    EXPECT_FALSE(parse({"--hedge", "0.5"}, &err).has_value());
    EXPECT_FALSE(parse({"--cloud", "o4-mini"}, &err).has_value());
    EXPECT_FALSE(parse({"--node-crash-rate", "3"}, &err).has_value());
}
