/**
 * @file
 * Cross-validation property suite: the Section-IV analytical models,
 * fitted on sweep measurements, must predict the engine's behaviour
 * across the whole operating grid — for every model and precision.
 * This is the contract that lets the paper (and our evaluator) replace
 * week-long hardware runs with closed-form evaluation.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <tuple>

#include "model/calibration.hh"
#include "model/zoo.hh"
#include "perfmodel/characterize.hh"

namespace er = edgereason;
using er::model::ModelId;

namespace {

struct Fixture
{
    er::engine::InferenceEngine engine;
    er::perf::CharacterizationResult perf;
};

/** Characterize once per (model, precision); noiseless engine. */
Fixture &
fixtureFor(ModelId id, bool quant)
{
    static std::map<std::pair<ModelId, bool>,
                    std::unique_ptr<Fixture>> cache;
    const auto key = std::make_pair(id, quant);
    auto it = cache.find(key);
    if (it == cache.end()) {
        er::engine::EngineConfig cfg;
        cfg.measurementNoise = false;
        auto f = std::make_unique<Fixture>(Fixture{
            er::engine::InferenceEngine(
                quant ? er::model::quantizedSpec(id)
                      : er::model::spec(id),
                er::model::calibration(
                    id, quant ? er::DType::W4A16 : er::DType::FP16),
                cfg),
            {}});
        f->perf = er::perf::characterize(f->engine);
        it = cache.emplace(key, std::move(f)).first;
    }
    return *it->second;
}

std::string
paramName(const ::testing::TestParamInfo<std::tuple<ModelId, bool>>
              &info)
{
    std::string s = er::model::modelName(std::get<0>(info.param));
    s += std::get<1>(info.param) ? "_w4" : "_fp16";
    for (char &c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return s;
}

} // namespace

class CrossValidationTest
    : public ::testing::TestWithParam<std::tuple<ModelId, bool>>
{
};

TEST_P(CrossValidationTest, PrefillModelPredictsEngineWithinTenPct)
{
    const auto [id, quant] = GetParam();
    auto &f = fixtureFor(id, quant);
    for (er::Tokens i : {64, 192, 448, 960, 1984, 4032}) {
        const double pred = f.perf.latency.prefill(i);
        const double meas = f.engine.prefillLatency(i);
        EXPECT_NEAR(pred, meas, 0.12 * meas) << "I = " << i;
    }
}

TEST_P(CrossValidationTest, DecodeModelPredictsEngineWithinFivePct)
{
    const auto [id, quant] = GetParam();
    auto &f = fixtureFor(id, quant);
    for (er::Tokens i : {64, 512, 2048}) {
        for (er::Tokens o : {64, 512, 1536}) {
            const double pred = f.perf.latency.decode(i, o);
            const double meas = f.engine.run(i, o).decode.seconds;
            EXPECT_NEAR(pred, meas, 0.05 * meas)
                << "I = " << i << " O = " << o;
        }
    }
}

TEST_P(CrossValidationTest, EnergyModelPredictsEngineWithinTenPct)
{
    const auto [id, quant] = GetParam();
    auto &f = fixtureFor(id, quant);
    er::perf::TotalEnergyModel em;
    em.latency = f.perf.latency;
    em.prefillPower = f.perf.prefillPower;
    em.decodePower = f.perf.decodePower;
    for (er::Tokens o : {128, 512, 1536}) {
        const double pred = em.total(512, o);
        const double meas = f.engine.run(512, o).totalEnergy();
        EXPECT_NEAR(pred, meas, 0.10 * meas) << "O = " << o;
    }
}

TEST_P(CrossValidationTest, BudgetInversionRoundTrips)
{
    const auto [id, quant] = GetParam();
    auto &f = fixtureFor(id, quant);
    for (double budget : {2.0, 10.0, 60.0, 300.0}) {
        const er::Tokens max_o =
            f.perf.latency.maxOutputTokens(170, budget);
        if (max_o == 0)
            continue;
        EXPECT_LE(f.perf.latency.total(170, max_o), budget);
        EXPECT_GT(f.perf.latency.total(170, max_o + 1), budget);
        // The engine agrees the budget roughly holds (5% slack).
        const double meas = f.engine.run(170, max_o).totalSeconds();
        EXPECT_LT(meas, 1.06 * budget) << "budget " << budget;
    }
}

TEST_P(CrossValidationTest, DecodeEnergyDominatesTotal)
{
    const auto [id, quant] = GetParam();
    auto &f = fixtureFor(id, quant);
    const auto r = f.engine.run(170, 800);
    EXPECT_GT(r.decode.energy / r.totalEnergy(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    AllDsr1, CrossValidationTest,
    ::testing::Combine(
        ::testing::Values(ModelId::Dsr1Qwen1_5B, ModelId::Dsr1Llama8B,
                          ModelId::Dsr1Qwen14B),
        ::testing::Bool()),
    paramName);
