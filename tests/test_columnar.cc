/**
 * @file
 * Columnar request-state + calendar-queue regression suite
 * (DESIGN.md §11).  The SoA RequestBatch and the three calendar-queue
 * indexes replaced the executor's per-request objects and per-cycle
 * scans; the contract of that refactor is "not one reported bit
 * moves".  This suite pins that contract with a pre-refactor golden
 * matrix — 3 scenarios (zero-fault, faulted, KV-pressure) × 3
 * schedulers × exact/macro stepping, every ServingReport field
 * compared with EXPECT_EQ at full double precision — plus
 * checkpoint/resume legs over the same goldens, sharded-execution
 * bit-identity at several thread counts, CalendarQueue unit tests
 * against a std::multiset reference, and the degenerate-percentile
 * guarantees of buildServingReport().
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "engine/event_queue.hh"
#include "engine/faults.hh"
#include "engine/server.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::engine;
using er::Seconds;
using er::model::ModelId;
namespace fs = std::filesystem;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

InferenceEngine
makeEngine()
{
    EngineConfig cfg;
    cfg.measurementNoise = false;
    return InferenceEngine(er::model::spec(ModelId::DeepScaleR1_5B),
                           er::model::calibration(ModelId::DeepScaleR1_5B),
                           cfg);
}

er::perf::LatencyModel
toyModel()
{
    er::perf::LatencyModel m;
    m.prefill.a = 0.0;
    m.prefill.b = 1e-4;
    m.prefill.c = 0.01;
    m.decode.m = 1e-6;
    m.decode.n = 0.02;
    return m;
}

std::string
scratchDir(const std::string &tag)
{
    const auto dir = fs::temp_directory_path() /
        ("edgereason_columnar_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

// --- Pre-refactor golden matrix --------------------------------------
//
// Captured from the last AoS/linear-scan executor (commit before the
// columnar refactor) by tools equivalent to the serving goldens in
// test_server.cc: each row is the full ServingReport of one
// scenario × scheduler × stepping-mode run, printed at %.17g so the
// doubles round-trip exactly.  The columnar executor must reproduce
// every row bit for bit.

struct GoldenRow
{
    std::size_t completed;
    std::size_t timedOut;
    std::size_t shed;
    std::size_t retriedCompleted;
    std::size_t degradedCompleted;
    std::uint64_t preemptions;
    std::size_t peakQueueDepth;
    double makespan;
    double throughputQps;
    double avgBatch;
    double meanLatency;
    double p50Latency;
    double p95Latency;
    double p99Latency;
    double totalEnergy;
    double energyPerQuery;
    double generatedTokens;
    double utilization;
    double meanQueueDelay;
    double p95QueueDelay;
    double p99QueueDelay;
    double goodputQps;
    double deadlineHitRate;
    double throttleResidency;
};

// Indexed [scenario*6 + scheduler*2 + (exact ? 0 : 1)] with scenario
// in {ZeroFault, Faulted, KvPressure} and scheduler in {Fcfs, Edf,
// Spjf} (enum order).
const GoldenRow kGolden[18] = {
    // ZeroFault / Fcfs / exact
    {40u, 0u, 0u, 0u, 0u, 0u, 1u,
     97.639669240111516, 0.40966955655732118, 2.8525950857401705, 7.1479277056337507,
     6.6105845837061246, 12.589344909270258, 15.608470632710738,
     1998.426194565887, 49.960654864147173, 9905,
     0.99493447270387059, 0.013149128324883155, 0.025973867974072105, 0.036486638819613754,
     0.40966955655732118, 1, 0},
    // ZeroFault / Fcfs / macro
    {40u, 0u, 0u, 0u, 0u, 0u, 1u,
     97.639669240111516, 0.40966955655732118, 2.8525950857401705, 7.1479277056337507,
     6.6105845837061246, 12.589344909270258, 15.608470632710738,
     1998.4261945658877, 49.960654864147195, 9905,
     0.99493447270387059, 0.013149128324883155, 0.025973867974072105, 0.036486638819613754,
     0.40966955655732118, 1, 0},
    // ZeroFault / Edf / exact
    {40u, 0u, 0u, 0u, 0u, 0u, 1u,
     97.639669240111516, 0.40966955655732118, 2.8525950857401705, 7.1479277056337507,
     6.6105845837061246, 12.589344909270258, 15.608470632710738,
     1998.426194565887, 49.960654864147173, 9905,
     0.99493447270387059, 0.013149128324883155, 0.025973867974072105, 0.036486638819613754,
     0.40966955655732118, 1, 0},
    // ZeroFault / Edf / macro
    {40u, 0u, 0u, 0u, 0u, 0u, 1u,
     97.639669240111516, 0.40966955655732118, 2.8525950857401705, 7.1479277056337507,
     6.6105845837061246, 12.589344909270258, 15.608470632710738,
     1998.4261945658877, 49.960654864147195, 9905,
     0.99493447270387059, 0.013149128324883155, 0.025973867974072105, 0.036486638819613754,
     0.40966955655732118, 1, 0},
    // ZeroFault / Spjf / exact
    {40u, 0u, 0u, 0u, 0u, 0u, 1u,
     97.639669240111516, 0.40966955655732118, 2.8525950857401705, 7.1479277056337507,
     6.6105845837061246, 12.589344909270258, 15.608470632710738,
     1998.426194565887, 49.960654864147173, 9905,
     0.99493447270387059, 0.013149128324883155, 0.025973867974072105, 0.036486638819613754,
     0.40966955655732118, 1, 0},
    // ZeroFault / Spjf / macro
    {40u, 0u, 0u, 0u, 0u, 0u, 1u,
     97.639669240111516, 0.40966955655732118, 2.8525950857401705, 7.1479277056337507,
     6.6105845837061246, 12.589344909270258, 15.608470632710738,
     1998.4261945658877, 49.960654864147195, 9905,
     0.99493447270387059, 0.013149128324883155, 0.025973867974072105, 0.036486638819613754,
     0.40966955655732118, 1, 0},
    // Faulted / Fcfs / exact
    {22u, 8u, 20u, 0u, 5u, 0u, 27u,
     56.770477367600463, 0.38752536564992218, 6.8074558400958605, 22.024678192886814,
     25.008075671730339, 29.558859968728221, 29.753683069858013,
     953.23677318200635, 43.328944235545741, 9093,
     0.92266618826861602, 13.099580788495121, 18.970204755364879, 19.557327323574569,
     0.38752536564992218, 0.44, 0.36812222103875081},
    // Faulted / Fcfs / macro
    {22u, 8u, 20u, 0u, 5u, 0u, 27u,
     56.770477367600463, 0.38752536564992218, 6.8074558400958605, 22.024678192886814,
     25.008075671730339, 29.558859968728221, 29.753683069858013,
     953.23677318200635, 43.328944235545741, 9093,
     0.92266618826861602, 13.099580788495121, 18.970204755364879, 19.557327323574569,
     0.38752536564992218, 0.44, 0.36812222103875081},
    // Faulted / Edf / exact
    {22u, 8u, 20u, 0u, 5u, 0u, 27u,
     56.770477367600463, 0.38752536564992218, 6.8074558400958605, 22.024678192886814,
     25.008075671730339, 29.558859968728221, 29.753683069858013,
     953.23677318200635, 43.328944235545741, 9093,
     0.92266618826861602, 13.099580788495121, 18.970204755364879, 19.557327323574569,
     0.38752536564992218, 0.44, 0.36812222103875081},
    // Faulted / Edf / macro
    {22u, 8u, 20u, 0u, 5u, 0u, 27u,
     56.770477367600463, 0.38752536564992218, 6.8074558400958605, 22.024678192886814,
     25.008075671730339, 29.558859968728221, 29.753683069858013,
     953.23677318200635, 43.328944235545741, 9093,
     0.92266618826861602, 13.099580788495121, 18.970204755364879, 19.557327323574569,
     0.38752536564992218, 0.44, 0.36812222103875081},
    // Faulted / Spjf / exact
    {24u, 3u, 23u, 0u, 0u, 0u, 31u,
     59.3755050074924, 0.40420708837712654, 6.1513071663760375, 16.327956216525823,
     16.145506847427047, 25.083211802817008, 28.893816212628341,
     984.35801126997126, 41.014917136248805, 9047,
     0.92605911464512247, 13.852238910265328, 30.025854032939471, 30.053503187161361,
     0.40420708837712654, 0.47999999999999998, 0.38259934988541211},
    // Faulted / Spjf / macro
    {24u, 3u, 23u, 0u, 0u, 0u, 31u,
     59.3755050074924, 0.40420708837712654, 6.1513071663760375, 16.327956216525823,
     16.145506847427047, 25.083211802817008, 28.893816212628341,
     984.35801126997126, 41.014917136248805, 9047,
     0.92605911464512247, 13.852238910265328, 30.025854032939471, 30.053503187161361,
     0.40420708837712654, 0.47999999999999998, 0.38259934988541211},
    // KvPressure / Fcfs / exact
    {17u, 0u, 13u, 3u, 0u, 58u, 16u,
     234.65066624027929, 0.072448121594473613, 10.194439826713657, 137.55041730734254,
     134.47284409525196, 186.91366572346237, 223.94920361357717,
     8041.2397132399055, 473.01410077881798, 64131,
     1, 56.731364779797353, 115.90331522351588, 116.5695888436494,
     0.072448121594473613, 1, 0},
    // KvPressure / Fcfs / macro
    {17u, 0u, 13u, 3u, 0u, 58u, 16u,
     234.65066624027929, 0.072448121594473613, 10.194439826713657, 137.55041730734254,
     134.47284409525196, 186.91366572346237, 223.94920361357717,
     8041.2397132399128, 473.01410077881837, 64131,
     1, 56.731364779797353, 115.90331522351588, 116.5695888436494,
     0.072448121594473613, 1, 0},
    // KvPressure / Edf / exact
    {17u, 0u, 13u, 3u, 0u, 58u, 16u,
     234.65066624027929, 0.072448121594473613, 10.194439826713657, 137.55041730734254,
     134.47284409525196, 186.91366572346237, 223.94920361357717,
     8041.2397132399055, 473.01410077881798, 64131,
     1, 56.731364779797353, 115.90331522351588, 116.5695888436494,
     0.072448121594473613, 1, 0},
    // KvPressure / Edf / macro
    {17u, 0u, 13u, 3u, 0u, 58u, 16u,
     234.65066624027929, 0.072448121594473613, 10.194439826713657, 137.55041730734254,
     134.47284409525196, 186.91366572346237, 223.94920361357717,
     8041.2397132399128, 473.01410077881837, 64131,
     1, 56.731364779797353, 115.90331522351588, 116.5695888436494,
     0.072448121594473613, 1, 0},
    // KvPressure / Spjf / exact
    {17u, 0u, 13u, 3u, 0u, 58u, 16u,
     235.99440523562623, 0.072035606026450164, 10.613218504184301, 138.53490325212624,
     135.53876442479321, 188.25740471880931, 225.29294260892408,
     8093.510986872132, 476.08888158071363, 66744,
     1, 56.844605026172282, 115.90420036672685, 116.57047398686036,
     0.072035606026450164, 1, 0},
    // KvPressure / Spjf / macro
    {17u, 0u, 13u, 3u, 0u, 58u, 16u,
     235.99440523562623, 0.072035606026450164, 10.613218504184301, 138.53490325212624,
     135.53876442479321, 188.25740471880931, 225.29294260892408,
     8093.5109868721438, 476.08888158071431, 66744,
     1, 56.844605026172282, 115.90420036672685, 116.57047398686036,
     0.072035606026450164, 1, 0},
};

enum GoldenScenario { ZeroFault = 0, Faulted = 1, KvPressure = 2 };

const char *const kScenarioNames[] = {"ZeroFault", "Faulted",
                                      "KvPressure"};

/** Config + trace + fault setup of one golden scenario, replicating
 *  the capture tool's parameters exactly. */
struct Scenario
{
    ServerConfig cfg;
    std::vector<ServerRequest> trace;
    FaultConfig fc;
    bool faulted = false;
};

Scenario
makeScenario(GoldenScenario which)
{
    Scenario s;
    switch (which) {
      case ZeroFault: {
        er::Rng rng(42, "golden");
        s.trace = ServingSimulator::poissonTrace(rng, 40, 0.5, 120,
                                                 256);
        break;
      }
      case Faulted: {
        s.cfg.maxBatch = 8;
        s.cfg.degrade.mode = DegradeMode::Budget;
        s.cfg.degrade.budget = er::strategy::TokenPolicy::hard(128);
        er::Rng rng(42, "golden-faults");
        s.trace = ServingSimulator::poissonTrace(rng, 50, 2.0, 120,
                                                 512);
        for (auto &r : s.trace)
            r.deadline = 30.0;
        s.fc.seed = 0xFA17;
        s.fc.horizon = s.trace.back().arrival + 600.0;
        s.fc.thermal = true;
        s.fc.thermalSpec.rThermal = 2.5;
        s.fc.thermalSpec.cThermal = 20.0;
        s.fc.thermalSpec.ambientC = 55.0;
        s.fc.thermalSpec.initialC = 55.0;
        s.fc.brownoutsPerHour = 300.0;
        s.fc.kvShrinksPerHour = 200.0;
        s.fc.kvShrinkFraction = 0.6;
        s.fc.kvShrinkDuration = 15.0;
        s.faulted = true;
        break;
      }
      case KvPressure: {
        s.cfg.maxBatch = 32;
        er::Rng rng(7, "golden-kv");
        s.trace = ServingSimulator::poissonTrace(rng, 30, 4.0, 120,
                                                 3000);
        s.fc.seed = 0xFA17;
        s.fc.horizon = s.trace.back().arrival + 600.0;
        s.fc.kvShrinksPerHour = 240.0;
        s.fc.kvShrinkFraction = 0.97;
        s.fc.kvShrinkDuration = 30.0;
        s.faulted = true;
        break;
      }
    }
    return s;
}

ServingSimulator
makeServer(InferenceEngine &eng, const Scenario &s,
           SchedulerPolicy policy, bool exact_steps)
{
    ServerConfig cfg = s.cfg;
    cfg.scheduler = policy;
    cfg.exactSteps = exact_steps;
    if (policy == SchedulerPolicy::Spjf)
        cfg.spjfModel = toyModel();
    return ServingSimulator(eng, cfg);
}

/** Fault plan of a scenario, optionally with a crash scheduled.  A
 *  crash schedule alone does not activate a plan, so the zero-fault
 *  scenario can crash without perturbing its run arithmetic. */
FaultPlan
planOf(const Scenario &s, std::int64_t crash_at_step = -1)
{
    if (!s.faulted && crash_at_step < 0)
        return FaultPlan();
    FaultConfig fc = s.fc;
    fc.crash.atStep = crash_at_step;
    return FaultPlan(fc);
}

/** EXPECT_EQ (never NEAR) of a live report against a golden row. */
void
expectGolden(const ServingReport &rep, const GoldenRow &g,
             SchedulerPolicy policy)
{
    EXPECT_EQ(rep.completed, g.completed);
    EXPECT_EQ(rep.timedOut, g.timedOut);
    EXPECT_EQ(rep.shed, g.shed);
    EXPECT_EQ(rep.retriedCompleted, g.retriedCompleted);
    EXPECT_EQ(rep.degradedCompleted, g.degradedCompleted);
    EXPECT_EQ(rep.preemptions, g.preemptions);
    EXPECT_EQ(rep.peakQueueDepth, g.peakQueueDepth);
    EXPECT_EQ(rep.makespan, g.makespan);
    EXPECT_EQ(rep.throughputQps, g.throughputQps);
    EXPECT_EQ(rep.avgBatch, g.avgBatch);
    EXPECT_EQ(rep.meanLatency, g.meanLatency);
    EXPECT_EQ(rep.p50Latency, g.p50Latency);
    EXPECT_EQ(rep.p95Latency, g.p95Latency);
    EXPECT_EQ(rep.p99Latency, g.p99Latency);
    EXPECT_EQ(rep.totalEnergy, g.totalEnergy);
    EXPECT_EQ(rep.energyPerQuery, g.energyPerQuery);
    EXPECT_EQ(rep.generatedTokens, g.generatedTokens);
    EXPECT_EQ(rep.utilization, g.utilization);
    EXPECT_EQ(rep.meanQueueDelay, g.meanQueueDelay);
    EXPECT_EQ(rep.p95QueueDelay, g.p95QueueDelay);
    EXPECT_EQ(rep.p99QueueDelay, g.p99QueueDelay);
    EXPECT_EQ(rep.goodputQps, g.goodputQps);
    EXPECT_EQ(rep.deadlineHitRate, g.deadlineHitRate);
    EXPECT_EQ(rep.throttleResidency, g.throttleResidency);
    EXPECT_EQ(rep.schedulerPolicy, policy);
}

void
expectIdenticalReports(const ServingReport &a, const ServingReport &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.throughputQps, b.throughputQps);
    EXPECT_EQ(a.avgBatch, b.avgBatch);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.p99Latency, b.p99Latency);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.energyPerQuery, b.energyPerQuery);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.schedulerPolicy, b.schedulerPolicy);
    EXPECT_EQ(a.meanQueueDelay, b.meanQueueDelay);
    EXPECT_EQ(a.p95QueueDelay, b.p95QueueDelay);
    EXPECT_EQ(a.p99QueueDelay, b.p99QueueDelay);
    EXPECT_EQ(a.peakQueueDepth, b.peakQueueDepth);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.retriedCompleted, b.retriedCompleted);
    EXPECT_EQ(a.degradedCompleted, b.degradedCompleted);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.goodputQps, b.goodputQps);
    EXPECT_EQ(a.deadlineHitRate, b.deadlineHitRate);
    EXPECT_EQ(a.throttleResidency, b.throttleResidency);
}

} // namespace

// --- Golden bit-identity matrix --------------------------------------

TEST(ColumnarGolden, MatrixBitIdentity)
{
    const SchedulerPolicy policies[] = {SchedulerPolicy::Fcfs,
                                        SchedulerPolicy::Edf,
                                        SchedulerPolicy::Spjf};
    for (int scen = 0; scen < 3; ++scen) {
        const auto s = makeScenario(static_cast<GoldenScenario>(scen));
        for (int sched = 0; sched < 3; ++sched) {
            for (int exact = 1; exact >= 0; --exact) {
                SCOPED_TRACE(std::string(kScenarioNames[scen]) + "/" +
                             schedulerPolicyName(policies[sched]) +
                             "/" + (exact ? "exact" : "macro"));
                auto eng = makeEngine();
                auto srv = makeServer(eng, s, policies[sched],
                                      exact != 0);
                const auto rep = srv.run(s.trace, planOf(s));
                expectGolden(rep,
                             kGolden[scen * 6 + sched * 2 +
                                     (exact ? 0 : 1)],
                             policies[sched]);
            }
        }
    }
}

// --- Checkpoint/resume against the goldens ---------------------------
//
// Each scenario is crashed mid-run (checkpoint every 4 steps, so the
// resume replays a journal tail) and resumed with a crash-free plan;
// the resumed report must still match the pre-refactor golden row.
// This exercises ServingState::serialize/restore across the columnar
// pool — the wire format is TrackedRequest records in container
// order, so a byte-level mismatch with the pre-columnar format would
// surface here as a fingerprint/row mismatch.

namespace {

void
crashResumeGolden(GoldenScenario which, SchedulerPolicy policy,
                  std::int64_t crash_step)
{
    SCOPED_TRACE(std::string(kScenarioNames[which]) + "/" +
                 schedulerPolicyName(policy) + " crash-step=" +
                 std::to_string(crash_step));
    const auto s = makeScenario(which);
    const auto dir = scratchDir(
        std::string(kScenarioNames[which]) + "_" +
        schedulerPolicyName(policy));
    DurabilityOptions dur;
    dur.checkpointDir = dir;
    dur.checkpointEvery = 4;
    dur.paranoid = true;

    auto eng = makeEngine();
    auto crash_srv = makeServer(eng, s, policy, /*exact=*/false);
    EXPECT_THROW(crash_srv.run(s.trace, planOf(s, crash_step), dur),
                 SimulatedCrash);

    auto resume_srv = makeServer(eng, s, policy, /*exact=*/false);
    DurabilityOptions res = dur;
    res.resume = true;
    const auto rep = resume_srv.run(s.trace, planOf(s), res);

    const int sched = static_cast<int>(policy);
    expectGolden(rep, kGolden[which * 6 + sched * 2 + 1], policy);
    fs::remove_all(dir);
}

} // namespace

TEST(ColumnarGolden, CheckpointResumeZeroFault)
{
    crashResumeGolden(ZeroFault, SchedulerPolicy::Fcfs, 10);
}

TEST(ColumnarGolden, CheckpointResumeFaulted)
{
    crashResumeGolden(Faulted, SchedulerPolicy::Edf, 10);
}

TEST(ColumnarGolden, CheckpointResumeKvPressure)
{
    crashResumeGolden(KvPressure, SchedulerPolicy::Spjf, 10);
}

// --- Sharded trace execution -----------------------------------------

TEST(ShardedServing, BitIdenticalAcrossThreadCounts)
{
    auto eng = makeEngine();
    er::RngBank bank(2026);
    const auto traces = ServingSimulator::replicatedPoissonTraces(
        bank, 6, 48, 4.0, 96, 384);
    ASSERT_EQ(traces.size(), 6u);
    ServerConfig cfg;
    cfg.maxBatch = 16;

    // Serial reference: each trace simulated on the calling thread.
    std::vector<ServingReport> base;
    for (const auto &t : traces) {
        ServingSimulator srv(eng, cfg);
        base.push_back(srv.run(t));
    }

    for (unsigned threads : {1u, 2u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        er::ThreadPool::setGlobalThreads(threads);
        const auto reports = ServingSimulator::runSharded(
            eng, cfg, traces, traces.size());
        ASSERT_EQ(reports.size(), base.size());
        for (std::size_t i = 0; i < base.size(); ++i) {
            SCOPED_TRACE("trace=" + std::to_string(i));
            expectIdenticalReports(base[i], reports[i]);
        }
    }
    er::ThreadPool::setGlobalThreads(0);
}

TEST(ShardedServing, ShardCountDoesNotChangeResults)
{
    // Fewer shards than traces: chunks simulate several traces each,
    // still in trace order within a chunk — identical reports.
    auto eng = makeEngine();
    er::RngBank bank(7);
    const auto traces = ServingSimulator::replicatedPoissonTraces(
        bank, 5, 32, 4.0, 96, 256);
    ServerConfig cfg;
    cfg.maxBatch = 16;
    const auto one = ServingSimulator::runSharded(eng, cfg, traces, 1);
    const auto two = ServingSimulator::runSharded(eng, cfg, traces, 2);
    const auto many = ServingSimulator::runSharded(eng, cfg, traces,
                                                   traces.size());
    ASSERT_EQ(one.size(), traces.size());
    ASSERT_EQ(two.size(), traces.size());
    ASSERT_EQ(many.size(), traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        SCOPED_TRACE("trace=" + std::to_string(i));
        expectIdenticalReports(one[i], two[i]);
        expectIdenticalReports(one[i], many[i]);
    }
}

TEST(ShardedServing, ZeroShardsIsFatal)
{
    auto eng = makeEngine();
    er::RngBank bank(1);
    const auto traces = ServingSimulator::replicatedPoissonTraces(
        bank, 1, 4, 4.0, 64, 64);
    EXPECT_THROW(
        ServingSimulator::runSharded(eng, ServerConfig{}, traces, 0),
        std::runtime_error);
}

TEST(ShardedServing, ReplicatedTracesAreOrderIndependent)
{
    // Traces come from named RngBank streams, so regenerating the set
    // from an equally-seeded bank reproduces it exactly.
    er::RngBank a(99);
    er::RngBank b(99);
    const auto ta = ServingSimulator::replicatedPoissonTraces(
        a, 3, 16, 2.0, 64, 128);
    const auto tb = ServingSimulator::replicatedPoissonTraces(
        b, 3, 16, 2.0, 64, 128);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
        ASSERT_EQ(ta[i].size(), tb[i].size());
        for (std::size_t j = 0; j < ta[i].size(); ++j) {
            EXPECT_EQ(ta[i][j].arrival, tb[i][j].arrival);
            EXPECT_EQ(ta[i][j].inputTokens, tb[i][j].inputTokens);
            EXPECT_EQ(ta[i][j].outputTokens, tb[i][j].outputTokens);
        }
    }
}

// --- CalendarQueue vs std::multiset reference ------------------------

namespace {

/** Reference answers from a std::multiset. */
Seconds
refMin(const std::multiset<Seconds> &m)
{
    return m.empty() ? kInf : *m.begin();
}

Seconds
refFirstAfter(const std::multiset<Seconds> &m, Seconds t)
{
    const auto it = m.upper_bound(t);
    return it == m.end() ? kInf : *it;
}

} // namespace

TEST(CalendarQueue, EmptyQueries)
{
    CalendarQueue cq;
    EXPECT_TRUE(cq.empty());
    EXPECT_EQ(cq.size(), 0u);
    EXPECT_EQ(cq.min(), kInf);
    EXPECT_EQ(cq.firstAfter(0.0), kInf);
    EXPECT_EQ(cq.firstAfter(-1e18), kInf);
    EXPECT_TRUE(cq.sortedKeys().empty());
}

TEST(CalendarQueue, DuplicateKeysAreMultisetSemantics)
{
    CalendarQueue cq;
    cq.insert(5.0);
    cq.insert(5.0);
    cq.insert(5.0);
    EXPECT_EQ(cq.size(), 3u);
    cq.erase(5.0);
    EXPECT_EQ(cq.size(), 2u);
    EXPECT_EQ(cq.min(), 5.0);
    cq.erase(5.0);
    cq.erase(5.0);
    EXPECT_TRUE(cq.empty());
    EXPECT_EQ(cq.min(), kInf);
}

TEST(CalendarQueue, FirstAfterIsStrict)
{
    CalendarQueue cq;
    cq.insert(1.0);
    cq.insert(2.0);
    cq.insert(2.0);
    cq.insert(3.0);
    EXPECT_EQ(cq.firstAfter(0.5), 1.0);
    EXPECT_EQ(cq.firstAfter(1.0), 2.0);  // strictly greater
    EXPECT_EQ(cq.firstAfter(2.0), 3.0);  // skips both duplicates
    EXPECT_EQ(cq.firstAfter(3.0), kInf);
}

TEST(CalendarQueue, EraseAbsentKeyPanics)
{
    CalendarQueue cq;
    cq.insert(1.0);
    // An absent key means derived-state drift; the queue must refuse
    // rather than silently diverge from the containers it indexes.
    EXPECT_THROW(cq.erase(2.0), std::logic_error);
    EXPECT_THROW(CalendarQueue().erase(0.0), std::logic_error);
}

TEST(CalendarQueue, NanKeyPanics)
{
    CalendarQueue cq;
    EXPECT_THROW(cq.insert(std::nan("")), std::logic_error);
}

TEST(CalendarQueue, MatchesMultisetUnderRandomChurn)
{
    // Deterministic churn over key ranges chosen to exercise every
    // structural regime: dense sub-width duplicates, keys far below
    // the origin (bucket-0 clamp), keys far past the wheel (overflow
    // clamp), and enough volume to trigger rebuilds.
    std::mt19937 gen(0xC0FFEE);
    std::uniform_real_distribution<double> spans[] = {
        std::uniform_real_distribution<double>(0.0, 0.5),
        std::uniform_real_distribution<double>(-500.0, -1.0),
        std::uniform_real_distribution<double>(1e4, 1e6),
        std::uniform_real_distribution<double>(0.0, 64.0),
    };
    CalendarQueue cq;
    std::multiset<Seconds> ref;
    std::vector<Seconds> live;
    for (int op = 0; op < 20000; ++op) {
        const bool do_insert =
            live.empty() || (gen() % 100) < 60;
        if (do_insert) {
            const auto key = spans[gen() % 4](gen);
            cq.insert(key);
            ref.insert(key);
            live.push_back(key);
        } else {
            const auto idx = gen() % live.size();
            const auto key = live[idx];
            cq.erase(key);
            ref.erase(ref.find(key));
            live[idx] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(cq.size(), ref.size());
        ASSERT_EQ(cq.min(), refMin(ref)) << "op " << op;
        if (op % 16 == 0) {
            // Probe firstAfter at the min, at a random live key, and
            // past the max.
            const Seconds probes[] = {
                refMin(ref),
                live.empty() ? 0.0 : live[gen() % live.size()],
                1e7,
                -1e4,
            };
            for (const auto t : probes)
                ASSERT_EQ(cq.firstAfter(t), refFirstAfter(ref, t))
                    << "op " << op << " t=" << t;
        }
    }
    const auto keys = cq.sortedKeys();
    ASSERT_EQ(keys.size(), ref.size());
    std::size_t i = 0;
    for (const auto k : ref)
        EXPECT_EQ(keys[i++], k);
}

TEST(CalendarQueue, MonotoneDrainMatchesSimulatorUsage)
{
    // The executor's access pattern: insert future instants, then
    // repeatedly take min() and erase it as the clock advances.  The
    // lowHint_ cursor must never skip a key.
    std::mt19937 gen(42);
    std::exponential_distribution<double> gap(2.0);
    CalendarQueue cq;
    std::multiset<Seconds> ref;
    double t = 0.0;
    for (int i = 0; i < 4000; ++i) {
        t += gap(gen);
        cq.insert(t);
        ref.insert(t);
    }
    while (!ref.empty()) {
        ASSERT_EQ(cq.min(), refMin(ref));
        cq.erase(*ref.begin());
        ref.erase(ref.begin());
        // Occasionally re-arm a future instant mid-drain, as retry
        // gates do.
        if (!ref.empty() && (gen() % 8) == 0) {
            const auto key = *ref.begin() + gap(gen);
            cq.insert(key);
            ref.insert(key);
        }
    }
    EXPECT_TRUE(cq.empty());
    EXPECT_EQ(cq.min(), kInf);
}

// --- Degenerate percentile contracts ---------------------------------

TEST(ServingReportPercentiles, EmptyTraceIsFatalNotNan)
{
    auto eng = makeEngine();
    ServingSimulator srv(eng, ServerConfig{});
    EXPECT_THROW(srv.run({}), std::runtime_error);
}

TEST(ServingReportPercentiles, AllShedRunHasZeroPercentiles)
{
    // Impossible deadlines shed every request at admission: zero
    // completions means empty latency samples, which must report 0.0
    // (the meanLatency/throughput convention), not NaN and not a
    // percentile() panic.
    auto eng = makeEngine();
    er::Rng rng(3, "degenerate");
    auto trace = ServingSimulator::poissonTrace(rng, 4, 2.0, 64, 128);
    for (auto &r : trace)
        r.deadline = 1e-9;
    ServingSimulator srv(eng, ServerConfig{});
    const auto rep = srv.run(trace);
    EXPECT_EQ(rep.completed, 0u);
    EXPECT_EQ(rep.meanLatency, 0.0);
    EXPECT_EQ(rep.p50Latency, 0.0);
    EXPECT_EQ(rep.p95Latency, 0.0);
    EXPECT_EQ(rep.p99Latency, 0.0);
    EXPECT_EQ(rep.energyPerQuery, 0.0);
    EXPECT_FALSE(std::isnan(rep.throughputQps));
    EXPECT_FALSE(std::isnan(rep.meanQueueDelay));
    EXPECT_FALSE(std::isnan(rep.p95QueueDelay));
    EXPECT_FALSE(std::isnan(rep.p99QueueDelay));
    EXPECT_FALSE(std::isnan(rep.goodputQps));
    EXPECT_FALSE(std::isnan(rep.deadlineHitRate));
    EXPECT_FALSE(std::isnan(rep.avgBatch));
    EXPECT_FALSE(std::isnan(rep.utilization));
    EXPECT_FALSE(std::isnan(rep.throttleResidency));
}

TEST(ServingReportPercentiles, SingleRequestIsItsOwnPercentile)
{
    auto eng = makeEngine();
    std::vector<ServerRequest> trace(1);
    trace[0].arrival = 0.0;
    trace[0].inputTokens = 64;
    trace[0].outputTokens = 32;
    ServingSimulator srv(eng, ServerConfig{});
    const auto rep = srv.run(trace);
    EXPECT_EQ(rep.completed, 1u);
    EXPECT_GT(rep.meanLatency, 0.0);
    EXPECT_EQ(rep.p50Latency, rep.meanLatency);
    EXPECT_EQ(rep.p95Latency, rep.meanLatency);
    EXPECT_EQ(rep.p99Latency, rep.meanLatency);
    EXPECT_EQ(rep.p95QueueDelay, rep.meanQueueDelay);
    EXPECT_EQ(rep.p99QueueDelay, rep.meanQueueDelay);
    EXPECT_FALSE(std::isnan(rep.utilization));
    EXPECT_FALSE(std::isnan(rep.avgBatch));
}
