/**
 * @file
 * Tests for fault injection and graceful degradation: zero-fault
 * bit-exactness, plan determinism (across repeats and thread counts),
 * deadline admission control, KV-shrink preemption/recovery, brownout
 * stalls, thermal throttling, and trace-contract validation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hh"
#include "engine/faults.hh"
#include "engine/server.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::engine;
using er::model::ModelId;

namespace {

InferenceEngine
makeEngine(ModelId id = ModelId::DeepScaleR1_5B)
{
    EngineConfig cfg;
    cfg.measurementNoise = false;
    return InferenceEngine(er::model::spec(id),
                           er::model::calibration(id), cfg);
}

std::vector<ServerRequest>
uniformTrace(std::size_t n, double interval, er::Tokens in,
             er::Tokens out, er::Seconds deadline = 0.0)
{
    std::vector<ServerRequest> t;
    for (std::size_t i = 0; i < n; ++i)
        t.push_back({interval * static_cast<double>(i), in, out, 0,
                     deadline});
    return t;
}

/** Bitwise equality of two reports (no tolerance: determinism and
 *  zero-fault exactness are exact claims). */
void
expectReportsIdentical(const ServingReport &a, const ServingReport &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.throughputQps, b.throughputQps);
    EXPECT_EQ(a.avgBatch, b.avgBatch);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.energyPerQuery, b.energyPerQuery);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.retriedCompleted, b.retriedCompleted);
    EXPECT_EQ(a.degradedCompleted, b.degradedCompleted);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.goodputQps, b.goodputQps);
    EXPECT_EQ(a.deadlineHitRate, b.deadlineHitRate);
    EXPECT_EQ(a.throttleResidency, b.throttleResidency);
}

void
expectServedIdentical(const std::vector<ServedRequest> &a,
                      const std::vector<ServedRequest> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].outcome, b[i].outcome);
        EXPECT_EQ(a[i].queueDelay, b[i].queueDelay);
        EXPECT_EQ(a[i].serviceTime, b[i].serviceTime);
        EXPECT_EQ(a[i].finish, b[i].finish);
        EXPECT_EQ(a[i].generated, b[i].generated);
        EXPECT_EQ(a[i].preemptions, b[i].preemptions);
        EXPECT_EQ(a[i].degraded, b[i].degraded);
    }
}

/** Every record must be finite and self-consistent whatever its
 *  outcome (satellite: no NaNs for shed / timed-out requests). */
void
expectRecordsWellDefined(const std::vector<ServedRequest> &served)
{
    for (const auto &s : served) {
        EXPECT_TRUE(std::isfinite(s.queueDelay));
        EXPECT_TRUE(std::isfinite(s.serviceTime));
        EXPECT_TRUE(std::isfinite(s.finish));
        EXPECT_TRUE(std::isfinite(s.latency()));
        EXPECT_GE(s.queueDelay, -1e-9);
        EXPECT_GE(s.serviceTime, 0.0);
        EXPECT_GE(s.generated, 0);
        EXPECT_GE(s.preemptions, 0);
        EXPECT_NEAR(s.latency(), s.finish - s.request.arrival, 1e-6);
        if (s.outcome == RequestOutcome::Shed) {
            EXPECT_EQ(s.serviceTime, 0.0);
            EXPECT_EQ(s.generated, 0);
        }
        if (s.outcome == RequestOutcome::Completed) {
            EXPECT_GT(s.generated, 0);
        }
    }
}

/** A plan with thermal coupling and both event mechanisms enabled. */
FaultPlan
stressPlan(std::uint64_t seed = 0xFA17)
{
    FaultConfig fc;
    fc.seed = seed;
    fc.horizon = 3600.0;
    fc.thermal = true;
    fc.thermalSpec.rThermal = 2.0;
    fc.thermalSpec.cThermal = 50.0;
    fc.thermalSpec.ambientC = 40.0;
    fc.thermalSpec.initialC = 40.0;
    fc.brownoutsPerHour = 30.0;
    fc.kvShrinksPerHour = 6.0;
    return FaultPlan(fc);
}

} // namespace

TEST(Faults, InactivePlanReproducesPlainRunExactly)
{
    auto eng = makeEngine();
    ServingSimulator srv(eng);
    const auto trace = uniformTrace(24, 2.0, 128, 256);

    const auto plain = srv.run(trace);
    const auto plain_served = srv.served();
    const auto zero = srv.run(trace, FaultPlan());
    expectReportsIdentical(plain, zero);
    expectServedIdentical(plain_served, srv.served());

    // A config with every mechanism disabled is inactive too.
    FaultConfig fc;
    const FaultPlan noop(fc);
    EXPECT_FALSE(noop.active());
    const auto noop_rep = srv.run(trace, noop);
    expectReportsIdentical(plain, noop_rep);
}

TEST(Faults, PlanGenerationIsDeterministic)
{
    const auto a = stressPlan();
    const auto b = stressPlan();
    ASSERT_EQ(a.events().size(), b.events().size());
    EXPECT_FALSE(a.events().empty());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].time, b.events()[i].time);
        EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
        EXPECT_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
    }
    // Events are sorted and a different seed reshuffles them.
    for (std::size_t i = 1; i < a.events().size(); ++i)
        EXPECT_LE(a.events()[i - 1].time, a.events()[i].time);
    const auto c = stressPlan(1234);
    bool differs = c.events().size() != a.events().size();
    for (std::size_t i = 0; !differs && i < a.events().size(); ++i)
        differs = c.events()[i].time != a.events()[i].time;
    EXPECT_TRUE(differs);
}

TEST(Faults, MechanismStreamsAreIndependent)
{
    // Enabling KV shrinks must not perturb the brownout schedule:
    // each mechanism draws from its own named RNG stream.
    FaultConfig fc;
    fc.brownoutsPerHour = 20.0;
    const FaultPlan alone(fc);
    fc.kvShrinksPerHour = 10.0;
    const FaultPlan both(fc);

    std::vector<FaultEvent> alone_b, both_b;
    for (const auto &e : alone.events())
        if (e.kind == FaultKind::Brownout)
            alone_b.push_back(e);
    for (const auto &e : both.events())
        if (e.kind == FaultKind::Brownout)
            both_b.push_back(e);
    ASSERT_EQ(alone_b.size(), both_b.size());
    for (std::size_t i = 0; i < alone_b.size(); ++i) {
        EXPECT_EQ(alone_b[i].time, both_b[i].time);
        EXPECT_EQ(alone_b[i].duration, both_b[i].duration);
    }
}

TEST(Faults, PlanValidatesConfig)
{
    FaultConfig fc;
    fc.horizon = 0.0;
    EXPECT_THROW(FaultPlan{fc}, std::runtime_error);
    fc = FaultConfig{};
    fc.brownoutsPerHour = -1.0;
    EXPECT_THROW(FaultPlan{fc}, std::runtime_error);
    fc = FaultConfig{};
    fc.kvShrinkFraction = 1.0;
    fc.kvShrinksPerHour = 1.0;
    EXPECT_THROW(FaultPlan{fc}, std::runtime_error);
    fc = FaultConfig{};
    fc.kvShrinksPerHour = 1.0;
    fc.kvShrinkDuration = 0.0;
    EXPECT_THROW(FaultPlan{fc}, std::runtime_error);
}

TEST(Faults, RunIsDeterministicAcrossRepeatsAndThreadCounts)
{
    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.degrade.mode = DegradeMode::Budget;
    ServingSimulator srv(eng, cfg);
    const auto trace = uniformTrace(30, 3.0, 128, 384, 600.0);
    const auto plan = stressPlan();

    er::ThreadPool::setGlobalThreads(1);
    const auto one = srv.run(trace, plan);
    const auto one_served = srv.served();
    er::ThreadPool::setGlobalThreads(4);
    const auto four = srv.run(trace, plan);
    expectReportsIdentical(one, four);
    expectServedIdentical(one_served, srv.served());
    const auto again = srv.run(trace, plan);
    expectReportsIdentical(one, again);
}

TEST(Faults, DeadlinesShedAndTimeOutWithWellDefinedRecords)
{
    auto eng = makeEngine();
    ServingSimulator srv(eng);
    // A burst far beyond what the deadline allows: some complete in
    // time, the rest must be shed up front or aborted mid-flight --
    // never silently dropped.
    auto trace = uniformTrace(40, 0.0, 256, 512, 25.0);
    const auto rep = srv.run(trace);

    EXPECT_EQ(srv.served().size(), trace.size());
    EXPECT_EQ(rep.completed + rep.timedOut + rep.shed, trace.size());
    EXPECT_GT(rep.shed + rep.timedOut, 0u);
    EXPECT_GT(rep.completed, 0u);
    EXPECT_LT(rep.deadlineHitRate, 1.0);
    EXPECT_LE(rep.goodputQps, rep.throughputQps + 1e-12);
    expectRecordsWellDefined(srv.served());
    // Completed-within-deadline requests really did finish in time.
    for (const auto &s : srv.served()) {
        if (s.deadlineMet()) {
            EXPECT_LE(s.finish,
                      s.request.arrival + s.request.deadline + 1e-6);
        }
    }
}

TEST(Faults, NonMonotoneTraceThrows)
{
    auto eng = makeEngine();
    ServingSimulator srv(eng);
    std::vector<ServerRequest> bad = {{10.0, 64, 64}, {5.0, 64, 64}};
    EXPECT_THROW(srv.run(bad), std::runtime_error);
    std::vector<ServerRequest> neg = {{0.0, 64, 64, 0, -1.0}};
    EXPECT_THROW(srv.run(neg), std::runtime_error);
}

TEST(Faults, FallbackModeRequiresFallbackEngine)
{
    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.degrade.mode = DegradeMode::Fallback;
    ServingSimulator srv(eng, cfg);
    const auto trace = uniformTrace(4, 1.0, 64, 64);
    // Zero-fault runs never consult the degrade policy...
    EXPECT_NO_THROW(srv.run(trace));
    // ...but an active plan demands the fallback engine up front.
    EXPECT_THROW(srv.run(trace, stressPlan()), std::runtime_error);
}

TEST(Faults, KvShrinkForcesPreemptionAndRecovery)
{
    // The 14B KV pool fits only ~4 concurrent 31.5k-token sequences;
    // halving the pool mid-run must evict victims, which then retry
    // after backoff and complete once the pool is restored.
    auto eng = makeEngine(ModelId::Dsr1Qwen14B);
    ServingSimulator srv(eng);
    FaultConfig fc;
    fc.horizon = 3600.0;
    fc.kvShrinksPerHour = 40.0;
    fc.kvShrinkFraction = 0.5;
    fc.kvShrinkDuration = 150.0;
    const FaultPlan plan(fc);
    ASSERT_FALSE(plan.events().empty());

    const auto trace = uniformTrace(6, 0.0, 512, 31000);
    const auto rep = srv.run(trace, plan);
    EXPECT_EQ(srv.served().size(), trace.size());
    EXPECT_GT(rep.preemptions, 0u);
    EXPECT_EQ(rep.completed + rep.shed + rep.timedOut, trace.size());
    EXPECT_GT(rep.retriedCompleted, 0u);
    expectRecordsWellDefined(srv.served());
}

TEST(Faults, BrownoutsStretchTheRunWithoutLosingWork)
{
    auto eng = makeEngine();
    ServingSimulator srv(eng);
    const auto trace = uniformTrace(16, 0.0, 120, 512);
    const auto base = srv.run(trace);

    FaultConfig fc;
    fc.horizon = 3600.0;
    fc.brownoutsPerHour = 720.0;
    fc.brownoutMeanStall = 3.0;
    const FaultPlan plan(fc);
    ASSERT_FALSE(plan.events().empty());
    const auto rep = srv.run(trace, plan);

    EXPECT_EQ(rep.completed, trace.size());
    EXPECT_GT(rep.makespan, base.makespan);
    EXPECT_GT(rep.totalEnergy, base.totalEnergy);
    // Stall time is idle, not busy: utilization drops.
    EXPECT_LT(rep.utilization, base.utilization);
}

TEST(Faults, ThermalThrottlingDeratesSustainedLoad)
{
    auto eng = makeEngine();
    ServingSimulator srv(eng);
    const auto trace = uniformTrace(48, 0.0, 120, 512);
    const auto base = srv.run(trace);

    // Passively cooled enclosure with a tiny thermal mass: sustained
    // decode power crosses the throttle point within the run.
    FaultConfig fc;
    fc.thermal = true;
    fc.thermalSpec.rThermal = 2.5;
    fc.thermalSpec.cThermal = 10.0;
    fc.thermalSpec.ambientC = 45.0;
    fc.thermalSpec.initialC = 45.0;
    const FaultPlan plan(fc);
    EXPECT_TRUE(plan.active());
    EXPECT_TRUE(plan.events().empty());
    const auto rep = srv.run(trace, plan);

    EXPECT_EQ(rep.completed, trace.size());
    EXPECT_GT(rep.throttleResidency, 0.0);
    EXPECT_LE(rep.throttleResidency, 1.0);
    EXPECT_GT(rep.makespan, base.makespan);
    // Derated steps draw less power than MAXN steps.
    EXPECT_LT(rep.totalEnergy, base.totalEnergy * 1.5);
}

TEST(Faults, BudgetDegradeShrinksAdmissionsUnderThrottle)
{
    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.degrade.mode = DegradeMode::Budget;
    cfg.degrade.budget = er::strategy::TokenPolicy::hard(128);
    ServingSimulator srv(eng, cfg);
    // Steady stream long enough that later admissions land while the
    // governor is throttled.
    const auto trace = uniformTrace(64, 4.0, 120, 512);

    FaultConfig fc;
    fc.thermal = true;
    fc.thermalSpec.rThermal = 2.5;
    fc.thermalSpec.cThermal = 40.0;
    fc.thermalSpec.ambientC = 45.0;
    fc.thermalSpec.initialC = 45.0;
    const auto rep = srv.run(trace, FaultPlan(fc));

    EXPECT_GT(rep.throttleResidency, 0.0);
    EXPECT_GT(rep.degradedCompleted, 0u);
    // Degraded completions kept at most the clamped budget.
    bool saw_clamped = false;
    for (const auto &s : srv.served()) {
        if (s.degraded && s.outcome == RequestOutcome::Completed) {
            EXPECT_LE(s.generated, 128);
            saw_clamped = true;
        }
    }
    EXPECT_TRUE(saw_clamped);
    // Shrunk budgets generate fewer tokens than the ideal run.
    ServingSimulator plain(eng);
    const auto base = plain.run(trace);
    EXPECT_LT(rep.generatedTokens, base.generatedTokens);
}

TEST(Faults, FallbackDegradeServesFromSmallerModel)
{
    auto eng = makeEngine(ModelId::Dsr1Llama8B);
    auto small = makeEngine(ModelId::DeepScaleR1_5B);
    ServerConfig cfg;
    cfg.degrade.mode = DegradeMode::Fallback;
    ServingSimulator srv(eng, cfg);
    srv.setFallbackEngine(small);
    const auto trace = uniformTrace(32, 8.0, 120, 384);

    FaultConfig fc;
    fc.thermal = true;
    fc.thermalSpec.rThermal = 2.5;
    fc.thermalSpec.cThermal = 40.0;
    fc.thermalSpec.ambientC = 45.0;
    fc.thermalSpec.initialC = 45.0;
    const auto rep = srv.run(trace, FaultPlan(fc));
    EXPECT_GT(rep.throttleResidency, 0.0);
    EXPECT_EQ(rep.completed + rep.shed + rep.timedOut, trace.size());

    // Riding the throttle out on the big model is slower than hot-
    // swapping to the 1.5B while derated.
    ServerConfig none;
    ServingSimulator ride(eng, none);
    const auto base = ride.run(trace, FaultPlan(fc));
    EXPECT_LT(rep.makespan, base.makespan);
}
