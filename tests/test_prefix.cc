/**
 * @file
 * Shared-prefix KV reuse suite (DESIGN.md §13).  Covers the radix
 * prefix index inside KvCache (match/acquire/insert/evict, refcounted
 * COW pages, both eviction policies, conservation auditing, canonical
 * serialization with geometry/mode fatals), the freeTokenCapacity()
 * tail-block semantics (including the exactly-full boundary), the
 * multi-turn session workload generator, TTFT improvement from turn 2
 * onward when the cache is on, checkpoint-crash-resume exactness of a
 * prefix-cached run, and — the refactor's hard contract — a
 * pre-refactor golden matrix proving that with the prefix cache off
 * (the default) not one reported bit moved.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "accuracy/trace_gen.hh"
#include "common/binio.hh"
#include "common/rng.hh"
#include "engine/faults.hh"
#include "engine/kv_cache.hh"
#include "engine/server.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::engine;
using er::Seconds;
using er::Tokens;
using er::model::ModelId;
namespace fs = std::filesystem;

namespace {

KvCache
prefixCache(std::size_t blocks,
            PrefixEvictPolicy evict = PrefixEvictPolicy::Lru)
{
    const auto s = er::model::spec(ModelId::Dsr1Qwen1_5B);
    PrefixCacheConfig pc;
    pc.enabled = true;
    pc.evict = evict;
    return KvCache(static_cast<er::Bytes>(s.kvBytesPerToken() * 16.0 *
                                          static_cast<double>(blocks)),
                   s, 16, pc);
}

/** Distinct, deterministic chain hashes h1..hn for a test prefix. */
std::vector<std::uint64_t>
testHashes(std::size_t n, const std::string &tag = "p")
{
    std::vector<std::uint64_t> h;
    h.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        h.push_back(er::Rng::hashString(tag + std::to_string(i)));
    return h;
}

std::vector<double>
unitCosts(std::size_t n, double c = 1.0)
{
    return std::vector<double>(n, c);
}

/** Build a sequence of @p tokens, publish its full blocks under
 *  @p hashes, release it.  Mirrors the executor's retire path. */
void
seedPrefix(KvCache &c, const std::vector<std::uint64_t> &hashes,
           Tokens tokens, double cost = 1.0)
{
    const SeqId s = c.createSequence();
    ASSERT_TRUE(c.append(s, tokens));
    c.insertPrefix(s, hashes, unitCosts(hashes.size(), cost));
    c.release(s);
}

InferenceEngine
makeEngine()
{
    EngineConfig cfg;
    cfg.measurementNoise = false;
    return InferenceEngine(er::model::spec(ModelId::DeepScaleR1_5B),
                           er::model::calibration(
                               ModelId::DeepScaleR1_5B),
                           cfg);
}

er::perf::LatencyModel
toyModel()
{
    er::perf::LatencyModel m;
    m.prefill.a = 0.0;
    m.prefill.b = 1e-4;
    m.prefill.c = 0.01;
    m.decode.m = 1e-6;
    m.decode.n = 0.02;
    return m;
}

std::string
scratchDir(const std::string &tag)
{
    const auto dir =
        fs::temp_directory_path() / ("edgereason_prefix_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

} // namespace

// --- Prefix index: match / acquire / insert ---------------------------

TEST(PrefixIndex, InsertThenAcquireSharesBlocks)
{
    auto c = prefixCache(64);
    const auto hashes = testHashes(4);
    seedPrefix(c, hashes, 64); // 4 full blocks
    EXPECT_EQ(c.indexedBlocks(), 4u);
    EXPECT_EQ(c.blocksInUse(), 4u); // index keeps the pages alive

    const SeqId s = c.createSequence();
    EXPECT_EQ(c.peekPrefix(hashes, 1000), 64);
    const Tokens got = c.acquirePrefix(s, hashes, 1000);
    EXPECT_EQ(got, 64);
    EXPECT_EQ(c.sequenceTokens(s), 64);
    EXPECT_EQ(c.sequenceBlocks(s), 4u);
    // Shared, not copied: still 4 physical blocks.
    EXPECT_EQ(c.blocksInUse(), 4u);
    EXPECT_EQ(c.prefixStats().hitBlocks, 4u);
    c.auditConservation();
}

TEST(PrefixIndex, MaxTokensCapsTheMatch)
{
    auto c = prefixCache(64);
    const auto hashes = testHashes(4);
    seedPrefix(c, hashes, 64);
    // The vLLM recompute-last-token rule: a 64-token prompt passes
    // max_tokens = 63, which truncates the match to 3 blocks.
    EXPECT_EQ(c.peekPrefix(hashes, 63), 48);
    const SeqId s = c.createSequence();
    EXPECT_EQ(c.acquirePrefix(s, hashes, 63), 48);
    EXPECT_EQ(c.sequenceBlocks(s), 3u);
    c.auditConservation();
}

TEST(PrefixIndex, DivergentChainStopsAtFirstMismatch)
{
    auto c = prefixCache(64);
    const auto hashes = testHashes(4);
    seedPrefix(c, hashes, 64);
    auto forked = hashes;
    forked[2] = er::Rng::hashString("divergent");
    forked[3] = er::Rng::hashString("divergent2");
    EXPECT_EQ(c.peekPrefix(forked, 1000), 32); // first two blocks only
}

TEST(PrefixIndex, PartialTailBlockIsNeverIndexed)
{
    auto c = prefixCache(64);
    const SeqId s = c.createSequence();
    ASSERT_TRUE(c.append(s, 40)); // 2 full blocks + 8-token tail
    const auto hashes = testHashes(3);
    EXPECT_EQ(c.insertPrefix(s, hashes, unitCosts(3)), 2u);
    EXPECT_EQ(c.indexedBlocks(), 2u);
    c.release(s);
    c.auditConservation();
}

TEST(PrefixIndex, ReinsertIsDeduplicated)
{
    auto c = prefixCache(64);
    const auto hashes = testHashes(4);
    seedPrefix(c, hashes, 64);
    EXPECT_EQ(c.indexedBlocks(), 4u);
    const std::size_t before = c.blocksInUse();
    // A second request with the same prompt retires: nothing new.
    const SeqId s = c.createSequence();
    ASSERT_TRUE(c.append(s, 64));
    EXPECT_EQ(c.insertPrefix(s, hashes, unitCosts(4)), 0u);
    c.release(s);
    EXPECT_EQ(c.indexedBlocks(), 4u);
    EXPECT_EQ(c.blocksInUse(), before);
    c.auditConservation();
}

TEST(PrefixIndex, AcquiredPrefixIsCopyOnWriteProtected)
{
    auto c = prefixCache(64);
    const auto hashes = testHashes(1);
    seedPrefix(c, hashes, 16);
    const SeqId s = c.createSequence();
    ASSERT_EQ(c.acquirePrefix(s, hashes, 1000), 16);
    EXPECT_EQ(c.blocksInUse(), 1u);
    // Appending must not scribble on the indexed page: the full shared
    // tail means a fresh block, and the index page stays indexed.
    ASSERT_TRUE(c.append(s, 8));
    EXPECT_EQ(c.blocksInUse(), 2u);
    EXPECT_EQ(c.indexedBlocks(), 1u);
    c.auditConservation();
}

TEST(PrefixIndex, AcquireRequiresEmptySequence)
{
    auto c = prefixCache(64);
    const auto hashes = testHashes(1);
    seedPrefix(c, hashes, 16);
    const SeqId s = c.createSequence();
    ASSERT_TRUE(c.append(s, 8));
    EXPECT_THROW(c.acquirePrefix(s, hashes, 1000), std::logic_error);
}

TEST(PrefixIndex, InsertCostLengthMismatchIsFatal)
{
    auto c = prefixCache(64);
    const SeqId s = c.createSequence();
    ASSERT_TRUE(c.append(s, 32));
    EXPECT_THROW(c.insertPrefix(s, testHashes(2), unitCosts(1)),
                 std::runtime_error);
}

TEST(PrefixIndex, DisabledIndexRejectsPrefixOps)
{
    const auto s = er::model::spec(ModelId::Dsr1Qwen1_5B);
    KvCache c(static_cast<er::Bytes>(s.kvBytesPerToken() * 1024), s,
              16);
    EXPECT_FALSE(c.prefixEnabled());
    EXPECT_EQ(c.peekPrefix(testHashes(2), 1000), 0);
    const SeqId q = c.createSequence();
    EXPECT_EQ(c.acquirePrefix(q, testHashes(2), 1000), 0);
    ASSERT_TRUE(c.append(q, 32));
    EXPECT_EQ(c.insertPrefix(q, testHashes(2), unitCosts(2)), 0u);
}

// --- Eviction ---------------------------------------------------------

TEST(PrefixEvict, AppendPressureEvictsIdleIndexPages)
{
    auto c = prefixCache(8);
    seedPrefix(c, testHashes(4, "a"), 64);
    seedPrefix(c, testHashes(4, "b"), 64);
    EXPECT_EQ(c.blocksInUse(), 8u); // pool full of index pages
    const SeqId s = c.createSequence();
    EXPECT_TRUE(c.append(s, 48)); // must evict 3 index pages
    EXPECT_EQ(c.prefixStats().evictions, 3u);
    EXPECT_EQ(c.indexedBlocks(), 5u);
    c.auditConservation();
}

TEST(PrefixEvict, LivePagesAreNeverReclaimed)
{
    auto c = prefixCache(8);
    const auto ha = testHashes(4, "a");
    seedPrefix(c, ha, 64);
    seedPrefix(c, testHashes(4, "b"), 64);
    // A live sequence holds the "a" chain: those four pages have
    // refcount 2 and are not eviction candidates.
    const SeqId live = c.createSequence();
    ASSERT_EQ(c.acquirePrefix(live, ha, 1000), 64);
    const SeqId s = c.createSequence();
    // Only the 4 idle "b" pages are reclaimable.
    EXPECT_TRUE(c.append(s, 64));
    EXPECT_EQ(c.prefixStats().evictions, 4u);
    EXPECT_FALSE(c.append(s, 16)); // nothing left to evict
    EXPECT_EQ(c.sequenceTokens(live), 64);
    EXPECT_EQ(c.peekPrefix(ha, 1000), 64); // "a" chain intact
    c.auditConservation();
}

TEST(PrefixEvict, LruEvictsLeastRecentlyTouchedLeafFirst)
{
    auto c = prefixCache(8);
    const auto ha = testHashes(4, "a");
    const auto hb = testHashes(4, "b");
    seedPrefix(c, ha, 64);
    seedPrefix(c, hb, 64);
    // Touch the "a" chain so "b" is colder.
    const SeqId t = c.createSequence();
    ASSERT_EQ(c.acquirePrefix(t, ha, 1000), 64);
    c.release(t);
    const SeqId s = c.createSequence();
    ASSERT_TRUE(c.append(s, 16)); // one eviction
    EXPECT_EQ(c.peekPrefix(ha, 1000), 64);  // "a" untouched
    EXPECT_EQ(c.peekPrefix(hb, 1000), 48);  // "b" lost its leaf
    c.auditConservation();
}

TEST(PrefixEvict, LeavesGoBeforeInteriorNodes)
{
    auto c = prefixCache(4);
    const auto ha = testHashes(4, "a");
    seedPrefix(c, ha, 64);
    const SeqId s = c.createSequence();
    ASSERT_TRUE(c.append(s, 32)); // two evictions, deepest-first
    // The chain must shrink from the leaf end: blocks 0-1 remain.
    EXPECT_EQ(c.peekPrefix(ha, 1000), 32);
    c.auditConservation();
}

TEST(PrefixEvict, CostPolicyKeepsExpensivePages)
{
    auto c = prefixCache(8, PrefixEvictPolicy::Cost);
    const auto cheap = testHashes(4, "cheap");
    const auto dear = testHashes(4, "dear");
    seedPrefix(c, cheap, 64, /*cost=*/0.001);
    seedPrefix(c, dear, 64, /*cost=*/10.0);
    const SeqId s = c.createSequence();
    ASSERT_TRUE(c.append(s, 64)); // four evictions
    // bytes × rebuild-seconds ranks every cheap page below every dear
    // page, so the dear chain survives untouched.
    EXPECT_EQ(c.peekPrefix(dear, 1000), 64);
    EXPECT_EQ(c.peekPrefix(cheap, 1000), 0);
    c.auditConservation();
}

TEST(PrefixEvict, RandomizedChurnPreservesConservation)
{
    auto c = prefixCache(24);
    er::Rng rng(1234, "prefix-churn");
    std::vector<std::pair<SeqId, std::vector<std::uint64_t>>> live;
    for (int round = 0; round < 300; ++round) {
        const auto op = rng.uniformInt(0, 2);
        if (op == 0 || live.size() < 2) {
            const auto tag = "c" + std::to_string(rng.uniformInt(0, 7));
            const auto n =
                static_cast<std::size_t>(rng.uniformInt(1, 5));
            const auto hashes = testHashes(n, tag);
            const SeqId s = c.createSequence();
            const Tokens cached = c.acquirePrefix(
                s, hashes, static_cast<Tokens>(n) * 16 + 7);
            const Tokens want =
                static_cast<Tokens>(n) * 16 +
                static_cast<Tokens>(rng.uniformInt(0, 15));
            if (!c.append(s, want - cached)) {
                c.release(s);
                continue;
            }
            live.emplace_back(s, hashes);
        } else if (op == 1 && !live.empty()) {
            const auto i = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(
                                      live.size() - 1)));
            c.insertPrefix(live[i].first, live[i].second,
                           unitCosts(live[i].second.size(),
                                     rng.uniform(0.01, 5.0)));
            c.release(live[i].first);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(i));
        } else if (!live.empty()) {
            const auto i = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(
                                      live.size() - 1)));
            c.release(live[i].first);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(i));
        }
        c.auditConservation();
    }
}

// --- freeTokenCapacity tail semantics (satellite 2) -------------------

TEST(FreeTokenCapacity, ExactlyFullTailMatchesFreshSequence)
{
    auto c = prefixCache(8);
    const SeqId s = c.createSequence();
    ASSERT_TRUE(c.append(s, 32)); // tail exactly full
    // The documented boundary condition: an exactly-full tail has no
    // slack, so both overloads agree (this was off by one block).
    EXPECT_EQ(c.freeTokenCapacity(), 6 * 16);
    EXPECT_EQ(c.freeTokenCapacity(s), c.freeTokenCapacity());
}

TEST(FreeTokenCapacity, UnsharedPartialTailAddsSlack)
{
    auto c = prefixCache(8);
    const SeqId s = c.createSequence();
    ASSERT_TRUE(c.append(s, 20)); // 1 full + 4-token tail, 12 slack
    EXPECT_EQ(c.freeTokenCapacity(), 6 * 16);
    EXPECT_EQ(c.freeTokenCapacity(s), 6 * 16 + 12);
    // And the bound is tight: append exactly that much succeeds…
    auto probe = c;
    const auto cap = c.freeTokenCapacity(s);
    EXPECT_TRUE(probe.append(s, cap));
    // …one more token does not.
    EXPECT_FALSE(c.append(s, cap + 1));
}

TEST(FreeTokenCapacity, SharedPartialTailCostsACowBlock)
{
    auto c = prefixCache(8);
    const SeqId parent = c.createSequence();
    ASSERT_TRUE(c.append(parent, 20));
    const SeqId child = c.fork(parent); // tail now shared
    // 6 free whole blocks; writing the child's 12-token slack first
    // copies the tail, so capacity is whole-block tokens minus the
    // tokens already in the copied tail.
    EXPECT_EQ(c.freeTokenCapacity(child), 6 * 16 - 4);
    auto probe = c;
    const auto cap = c.freeTokenCapacity(child);
    EXPECT_TRUE(probe.append(child, cap));
    EXPECT_FALSE(c.append(child, cap + 1));
}

TEST(FreeTokenCapacity, SharedTailWithNoFreeBlocksIsZero)
{
    auto c = prefixCache(2);
    const SeqId parent = c.createSequence();
    ASSERT_TRUE(c.append(parent, 20)); // both blocks allocated
    const SeqId child = c.fork(parent);
    EXPECT_EQ(c.freeTokenCapacity(), 0);
    // The tail has 12 tokens of slack but no block to COW into.
    EXPECT_EQ(c.freeTokenCapacity(child), 0);
    EXPECT_FALSE(c.append(child, 1));
    // The unshared owner can still use the slack.
    c.release(child);
    EXPECT_EQ(c.freeTokenCapacity(parent), 12);
    EXPECT_TRUE(c.append(parent, 12));
}

TEST(FreeTokenCapacity, EmptySequenceMatchesFreshSequence)
{
    auto c = prefixCache(8);
    const SeqId s = c.createSequence();
    EXPECT_EQ(c.freeTokenCapacity(s), c.freeTokenCapacity());
}

// --- Serialization ----------------------------------------------------

TEST(PrefixSerialize, RoundTripIsCanonical)
{
    auto c = prefixCache(16);
    seedPrefix(c, testHashes(3, "a"), 48);
    seedPrefix(c, testHashes(2, "b"), 32);
    const SeqId s = c.createSequence();
    ASSERT_EQ(c.acquirePrefix(s, testHashes(3, "a"), 1000), 48);
    ASSERT_TRUE(c.append(s, 10));

    er::ByteWriter w;
    c.serialize(w);

    auto c2 = prefixCache(16);
    er::ByteReader r(w.bytes());
    c2.restore(r);
    c2.auditConservation();
    EXPECT_EQ(c2.indexedBlocks(), c.indexedBlocks());
    EXPECT_EQ(c2.blocksInUse(), c.blocksInUse());
    EXPECT_EQ(c2.sequenceTokens(s), c.sequenceTokens(s));
    EXPECT_EQ(c2.peekPrefix(testHashes(2, "b"), 1000), 32);
    EXPECT_EQ(c2.prefixStats().hitBlocks, c.prefixStats().hitBlocks);

    // Canonical: re-serializing the restored cache is bit-identical.
    er::ByteWriter w2;
    c2.serialize(w2);
    EXPECT_EQ(w.bytes(), w2.bytes());
}

TEST(PrefixSerialize, GeometryMismatchIsFatal)
{
    auto c = prefixCache(16);
    seedPrefix(c, testHashes(2, "a"), 32);
    er::ByteWriter w;
    c.serialize(w);
    auto small = prefixCache(8); // different block capacity
    er::ByteReader r(w.bytes());
    EXPECT_THROW(small.restore(r), std::runtime_error);
}

TEST(PrefixSerialize, EvictPolicyMismatchIsFatal)
{
    auto c = prefixCache(16, PrefixEvictPolicy::Lru);
    seedPrefix(c, testHashes(2, "a"), 32);
    er::ByteWriter w;
    c.serialize(w);
    auto other = prefixCache(16, PrefixEvictPolicy::Cost);
    er::ByteReader r(w.bytes());
    EXPECT_THROW(other.restore(r), std::runtime_error);
}

TEST(PrefixSerialize, MissingPrefixSectionIsFatal)
{
    // A checkpoint written without the prefix cache cannot restore
    // into a prefix-enabled instance.
    const auto spec = er::model::spec(ModelId::Dsr1Qwen1_5B);
    KvCache plain(static_cast<er::Bytes>(spec.kvBytesPerToken() * 16.0 *
                                         16.0),
                  spec, 16);
    const SeqId s = plain.createSequence();
    ASSERT_TRUE(plain.append(s, 32));
    er::ByteWriter w;
    plain.serialize(w);
    auto pc = prefixCache(16);
    er::ByteReader r(w.bytes());
    EXPECT_THROW(pc.restore(r), std::runtime_error);
}

// --- Session workload generator ---------------------------------------

TEST(SessionTrace, ShapeAndSharedSystemPrompt)
{
    er::acc::SessionTraceConfig sc;
    sc.sessions = 6;
    sc.turnsPerSession = 3;
    sc.systemPromptTokens = 128; // 8 full blocks
    er::Rng rng(99, "session-test");
    const auto trace = er::acc::generateSessionTrace(sc, rng);
    ASSERT_EQ(trace.size(), 18u);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_LE(trace[i - 1].arrival, trace[i].arrival);

    // Group turns by session in arrival order.
    std::map<std::int64_t, std::vector<const ServerRequest *>> by_s;
    for (const auto &r : trace) {
        ASSERT_GE(r.sessionId, 0);
        by_s[r.sessionId].push_back(&r);
    }
    ASSERT_EQ(by_s.size(), 6u);
    for (const auto &[sid, turns] : by_s) {
        ASSERT_EQ(turns.size(), 3u);
        for (std::size_t t = 1; t < turns.size(); ++t) {
            // Later turns strictly extend the context…
            EXPECT_GT(turns[t]->inputTokens, turns[t - 1]->inputTokens);
            // …and share the earlier turn's full-block hash chain.
            const auto &prev = turns[t - 1]->prefixHashes;
            const auto &cur = turns[t]->prefixHashes;
            ASSERT_GE(cur.size(), prev.size());
            EXPECT_TRUE(std::equal(prev.begin(), prev.end(),
                                   cur.begin()));
        }
    }
    // The system prompt hashes to the same chain in every session.
    const auto &a = by_s.begin()->second.front()->prefixHashes;
    const auto &b = std::next(by_s.begin())->second.front()
                        ->prefixHashes;
    ASSERT_GE(a.size(), 8u);
    ASSERT_GE(b.size(), 8u);
    EXPECT_TRUE(std::equal(a.begin(), a.begin() + 8, b.begin()));
    // But the turns diverge after the shared prompt.
    EXPECT_NE(a.back(), b.back());
}

TEST(SessionTrace, HashCountMatchesFullBlocks)
{
    er::acc::SessionTraceConfig sc;
    sc.sessions = 3;
    sc.turnsPerSession = 2;
    er::Rng rng(100, "session-test-2");
    const auto trace = er::acc::generateSessionTrace(sc, rng);
    for (const auto &r : trace)
        EXPECT_EQ(r.prefixHashes.size(),
                  static_cast<std::size_t>(r.inputTokens / 16));
}

// --- Serving integration ----------------------------------------------

namespace {

er::acc::SessionTraceConfig
servingSessionConfig()
{
    er::acc::SessionTraceConfig sc;
    sc.sessions = 10;
    sc.turnsPerSession = 4;
    sc.sessionQps = 0.05;
    sc.meanTurnGap = 40.0;
    sc.systemPromptTokens = 512;
    sc.meanUserTokens = 96.0;
    sc.meanThinkTokens = 256.0;
    sc.meanAnswerTokens = 96.0;
    return sc;
}

ServingReport
runSessions(const std::vector<ServerRequest> &trace, bool prefix_on,
            std::vector<ServedRequest> *served = nullptr,
            PrefixEvictPolicy evict = PrefixEvictPolicy::Lru)
{
    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.maxBatch = 16;
    cfg.prefixCache.enabled = prefix_on;
    cfg.prefixCache.evict = evict;
    ServingSimulator srv(eng, cfg);
    DurabilityOptions dur;
    dur.paranoid = true;
    const auto rep = srv.run(trace, FaultPlan(), dur);
    if (served)
        *served = srv.served();
    return rep;
}

/** Mean TTFT of all turns with index >= @p from_turn (per session,
 *  ordered by arrival). */
double
meanTtftFromTurn(const std::vector<ServedRequest> &served,
                 std::size_t from_turn)
{
    std::map<std::int64_t, std::vector<const ServedRequest *>> by_s;
    for (const auto &s : served)
        by_s[s.request.sessionId].push_back(&s);
    double sum = 0.0;
    std::size_t n = 0;
    for (auto &[sid, turns] : by_s) {
        std::sort(turns.begin(), turns.end(),
                  [](const ServedRequest *a, const ServedRequest *b) {
                      return a->request.arrival < b->request.arrival;
                  });
        for (std::size_t t = from_turn; t < turns.size(); ++t) {
            EXPECT_GT(turns[t]->firstToken, 0.0);
            sum += turns[t]->firstToken - turns[t]->request.arrival;
            ++n;
        }
    }
    EXPECT_GT(n, 0u);
    return sum / static_cast<double>(n);
}

} // namespace

TEST(PrefixServing, SessionWorkloadHitsAndSavesPrefill)
{
    er::Rng rng(2025, "serving-sessions");
    const auto trace =
        er::acc::generateSessionTrace(servingSessionConfig(), rng);
    std::vector<ServedRequest> on_served, off_served;
    const auto on = runSessions(trace, true, &on_served);
    const auto off = runSessions(trace, false, &off_served);

    EXPECT_EQ(on.completed, trace.size());
    EXPECT_EQ(off.completed, trace.size());
    // Measured reuse: a real hit rate and real prefill seconds saved.
    EXPECT_GT(on.prefixHitRate, 0.1);
    EXPECT_GT(on.prefillSecondsSaved, 1.0);
    EXPECT_EQ(off.prefixHitRate, 0.0);
    EXPECT_EQ(off.prefillSecondsSaved, 0.0);

    // TTFT from turn 2 onward improves when the cache is on (turn 1
    // of an idle session has nothing to reuse beyond the shared
    // system prompt, later turns reuse their whole history).
    const double ttft_on = meanTtftFromTurn(on_served, 1);
    const double ttft_off = meanTtftFromTurn(off_served, 1);
    EXPECT_LT(ttft_on, ttft_off);

    // Per-request accounting: cached turns carry cachedPrefix > 0.
    std::size_t cached_turns = 0;
    for (const auto &s : on_served)
        if (s.cachedPrefix > 0) {
            EXPECT_EQ(s.cachedPrefix % 16, 0);
            ++cached_turns;
        }
    EXPECT_GT(cached_turns, trace.size() / 2);
}

TEST(PrefixServing, OffModeIgnoresHashesBitIdentically)
{
    // With the cache off, a trace carrying prefix hashes must produce
    // the exact report of the same trace with the hashes stripped:
    // the off path may not read them at all.
    er::Rng rng(2026, "serving-sessions-off");
    const auto trace =
        er::acc::generateSessionTrace(servingSessionConfig(), rng);
    auto stripped = trace;
    for (auto &r : stripped) {
        r.prefixHashes.clear();
        r.sessionId = -1;
    }
    const auto a = runSessions(trace, false);
    const auto b = runSessions(stripped, false);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.p99Latency, b.p99Latency);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
}

TEST(PrefixServing, CostEvictionAlsoServesSessions)
{
    er::Rng rng(2027, "serving-sessions-cost");
    const auto trace =
        er::acc::generateSessionTrace(servingSessionConfig(), rng);
    const auto rep = runSessions(trace, true, nullptr,
                                 PrefixEvictPolicy::Cost);
    EXPECT_EQ(rep.completed, trace.size());
    EXPECT_GT(rep.prefixHitRate, 0.1);
}

// --- Checkpoint-crash-resume of a prefix-cached run -------------------

TEST(PrefixServing, CrashResumeReproducesUninterruptedRun)
{
    er::Rng rng(2028, "serving-sessions-crash");
    const auto trace =
        er::acc::generateSessionTrace(servingSessionConfig(), rng);

    ServerConfig cfg;
    cfg.maxBatch = 16;
    cfg.prefixCache.enabled = true;

    // Uninterrupted reference run.
    ServingReport ref;
    {
        auto eng = makeEngine();
        ServingSimulator srv(eng, cfg);
        DurabilityOptions dur;
        dur.paranoid = true;
        ref = srv.run(trace, FaultPlan(), dur);
    }

    for (const std::int64_t crash_step : {6, 40}) {
        SCOPED_TRACE("crash-step=" + std::to_string(crash_step));
        const auto dir =
            scratchDir("crash_" + std::to_string(crash_step));
        DurabilityOptions dur;
        dur.checkpointDir = dir;
        dur.checkpointEvery = 4;
        dur.paranoid = true;

        {
            auto eng = makeEngine();
            ServingSimulator srv(eng, cfg);
            FaultConfig fc;
            fc.crash.atStep = crash_step;
            EXPECT_THROW(srv.run(trace, FaultPlan(fc), dur),
                         SimulatedCrash);
        }
        auto eng = makeEngine();
        ServingSimulator srv(eng, cfg);
        DurabilityOptions resume = dur;
        resume.resume = true;
        const auto rep = srv.run(trace, FaultPlan(), resume);
        EXPECT_EQ(rep.completed, ref.completed);
        EXPECT_EQ(rep.makespan, ref.makespan);
        EXPECT_EQ(rep.totalEnergy, ref.totalEnergy);
        EXPECT_EQ(rep.meanLatency, ref.meanLatency);
        EXPECT_EQ(rep.p99Latency, ref.p99Latency);
        EXPECT_EQ(rep.generatedTokens, ref.generatedTokens);
        EXPECT_EQ(rep.cachedPrefixTokens, ref.cachedPrefixTokens);
        EXPECT_EQ(rep.prefixHitRate, ref.prefixHitRate);
        EXPECT_EQ(rep.prefillSecondsSaved, ref.prefillSecondsSaved);
        EXPECT_EQ(rep.prefixEvictions, ref.prefixEvictions);
        fs::remove_all(dir);
    }
}

// --- Pre-refactor golden bit-identity matrix --------------------------
//
// Captured from the executor immediately before the prefix-cache
// refactor (prefillChunk-heavy zero-fault and KV-shrink scenarios ×
// fcfs/edf/spjf × exact/macro, every ServingReport field at %.17g).
// With prefixCache off — the default — the refactored executor must
// reproduce every row bit for bit: same arithmetic, same order.

namespace {

struct GoldenRow
{
    std::size_t completed;
    std::size_t timedOut;
    std::size_t shed;
    std::size_t retriedCompleted;
    std::size_t degradedCompleted;
    std::uint64_t preemptions;
    std::size_t peakQueueDepth;
    double makespan;
    double throughputQps;
    double avgBatch;
    double meanLatency;
    double p50Latency;
    double p95Latency;
    double p99Latency;
    double totalEnergy;
    double energyPerQuery;
    double generatedTokens;
    double utilization;
    double meanQueueDelay;
    double p95QueueDelay;
    double p99QueueDelay;
    double goodputQps;
    double deadlineHitRate;
    double throttleResidency;
};

// Indexed [scenario*6 + scheduler*2 + (exact ? 0 : 1)] with scenario
// in {HeavyPrompt, KvPressure} and scheduler in {Fcfs, Edf, Spjf}.
const GoldenRow kGolden[12] = {
    // HeavyPrompt / fcfs / exact
    {36u, 0u, 0u, 0u, 0u, 0u, 7u,
     27.258894449319648, 1.3206698484024, 6.5393818930829433, 9.3761242251929691,
     9.1346860031042283, 13.27325189598505, 14.388564968806458,
     470.04578585442749, 13.056827384845208, 5425,
     1, 1.8923133732002948, 3.8554554836694219, 4.0678290498859759,
     1.3206698484024, 1, 0},
    // HeavyPrompt / fcfs / macro
    {36u, 0u, 0u, 0u, 0u, 0u, 7u,
     27.258894449319648, 1.3206698484024, 6.5393818930829433, 9.3761242251929691,
     9.1346860031042283, 13.27325189598505, 14.388564968806458,
     470.04578585442823, 13.056827384845228, 5425,
     1, 1.8923133732002948, 3.8554554836694219, 4.0678290498859759,
     1.3206698484024, 1, 0},
    // HeavyPrompt / edf / exact
    {36u, 0u, 0u, 0u, 0u, 0u, 7u,
     27.258894449319648, 1.3206698484024, 6.5393818930829433, 9.3761242251929691,
     9.1346860031042283, 13.27325189598505, 14.388564968806458,
     470.04578585442749, 13.056827384845208, 5425,
     1, 1.8923133732002948, 3.8554554836694219, 4.0678290498859759,
     1.3206698484024, 1, 0},
    // HeavyPrompt / edf / macro
    {36u, 0u, 0u, 0u, 0u, 0u, 7u,
     27.258894449319648, 1.3206698484024, 6.5393818930829433, 9.3761242251929691,
     9.1346860031042283, 13.27325189598505, 14.388564968806458,
     470.04578585442823, 13.056827384845228, 5425,
     1, 1.8923133732002948, 3.8554554836694219, 4.0678290498859759,
     1.3206698484024, 1, 0},
    // HeavyPrompt / spjf / exact
    {36u, 0u, 0u, 0u, 0u, 0u, 7u,
     29.298820034314154, 1.2287184247637812, 6.0449950668348986, 9.2216061513216268,
     8.2117421944360451, 15.751870135438589, 16.990688443068258,
     506.70210094304605, 14.075058359529057, 5425,
     1.0000000000000002, 1.7658002676668425, 7.1024915099260699, 8.3933749958219401,
     1.2287184247637812, 1, 0},
    // HeavyPrompt / spjf / macro
    {36u, 0u, 0u, 0u, 0u, 0u, 7u,
     29.298820034314154, 1.2287184247637812, 6.0449950668348986, 9.2216061513216268,
     8.2117421944360451, 15.751870135438589, 16.990688443068258,
     506.7021009430465, 14.07505835952907, 5425,
     1.0000000000000002, 1.7658002676668425, 7.1024915099260699, 8.3933749958219401,
     1.2287184247637812, 1, 0},
    // KvPressure / fcfs / exact
    {28u, 0u, 0u, 0u, 0u, 0u, 12u,
     111.988277718094, 0.25002616854671056, 10.750179354978792, 56.070507555207008,
     56.455412300502729, 87.451934705072517, 100.40433125213684,
     3454.4514386167989, 123.37326566488568, 34284,
     1.0000000000000004, 12.109451768707398, 40.639413071198561, 43.72557597950626,
     0.25002616854671056, 1, 0},
    // KvPressure / fcfs / macro
    {28u, 0u, 0u, 0u, 0u, 0u, 12u,
     111.988277718094, 0.25002616854671056, 10.750179354978792, 56.070507555207008,
     56.455412300502729, 87.451934705072517, 100.40433125213684,
     3454.4514386167971, 123.37326566488561, 34284,
     1.0000000000000004, 12.109451768707398, 40.639413071198561, 43.72557597950626,
     0.25002616854671056, 1, 0},
    // KvPressure / edf / exact
    {28u, 0u, 0u, 0u, 0u, 0u, 12u,
     111.988277718094, 0.25002616854671056, 10.750179354978792, 56.070507555207008,
     56.455412300502729, 87.451934705072517, 100.40433125213684,
     3454.4514386167989, 123.37326566488568, 34284,
     1.0000000000000004, 12.109451768707398, 40.639413071198561, 43.72557597950626,
     0.25002616854671056, 1, 0},
    // KvPressure / edf / macro
    {28u, 0u, 0u, 0u, 0u, 0u, 12u,
     111.988277718094, 0.25002616854671056, 10.750179354978792, 56.070507555207008,
     56.455412300502729, 87.451934705072517, 100.40433125213684,
     3454.4514386167971, 123.37326566488561, 34284,
     1.0000000000000004, 12.109451768707398, 40.639413071198561, 43.72557597950626,
     0.25002616854671056, 1, 0},
    // KvPressure / spjf / exact
    {28u, 0u, 0u, 0u, 0u, 0u, 12u,
     112.77745563826231, 0.24827657124852145, 10.574327512868342, 55.474487289436546,
     52.599936610651035, 94.908339773746235, 103.14657641281471,
     3497.1660334378953, 124.89878690849626, 34284,
     0.99999999999999889, 11.918728614997244, 40.200832431894447, 41.85153429093149,
     0.24827657124852145, 1, 0},
    // KvPressure / spjf / macro
    {28u, 0u, 0u, 0u, 0u, 0u, 12u,
     112.77745563826231, 0.24827657124852145, 10.574327512868342, 55.474487289436546,
     52.599936610651035, 94.908339773746235, 103.14657641281471,
     3497.1660334378907, 124.89878690849609, 34284,
     0.99999999999999889, 11.918728614997244, 40.200832431894447, 41.85153429093149,
     0.24827657124852145, 1, 0},
};

struct Scenario
{
    ServerConfig cfg;
    std::vector<ServerRequest> trace;
    FaultConfig fc;
    bool faulted = false;
};

Scenario
makeScenario(int which)
{
    Scenario s;
    if (which == 0) {
        // Heavy-prompt zero-fault: prompt-dominated, chunked prefill.
        s.cfg.maxBatch = 12;
        s.cfg.prefillChunk = 256;
        er::Rng rng(911, "prefix-golden");
        s.trace =
            ServingSimulator::poissonTrace(rng, 36, 1.5, 700, 160);
    } else {
        // KV-pressure with shrink faults and deadlines.
        s.cfg.maxBatch = 16;
        er::Rng rng(912, "prefix-golden-kv");
        s.trace =
            ServingSimulator::poissonTrace(rng, 28, 3.0, 400, 1200);
        for (auto &r : s.trace)
            r.deadline = 240.0;
        s.fc.seed = 0xBEEF;
        s.fc.horizon = s.trace.back().arrival + 600.0;
        s.fc.kvShrinksPerHour = 180.0;
        s.fc.kvShrinkFraction = 0.9;
        s.fc.kvShrinkDuration = 25.0;
        s.faulted = true;
    }
    return s;
}

void
expectGolden(const ServingReport &rep, const GoldenRow &g)
{
    EXPECT_EQ(rep.completed, g.completed);
    EXPECT_EQ(rep.timedOut, g.timedOut);
    EXPECT_EQ(rep.shed, g.shed);
    EXPECT_EQ(rep.retriedCompleted, g.retriedCompleted);
    EXPECT_EQ(rep.degradedCompleted, g.degradedCompleted);
    EXPECT_EQ(rep.preemptions, g.preemptions);
    EXPECT_EQ(rep.peakQueueDepth, g.peakQueueDepth);
    EXPECT_EQ(rep.makespan, g.makespan);
    EXPECT_EQ(rep.throughputQps, g.throughputQps);
    EXPECT_EQ(rep.avgBatch, g.avgBatch);
    EXPECT_EQ(rep.meanLatency, g.meanLatency);
    EXPECT_EQ(rep.p50Latency, g.p50Latency);
    EXPECT_EQ(rep.p95Latency, g.p95Latency);
    EXPECT_EQ(rep.p99Latency, g.p99Latency);
    EXPECT_EQ(rep.totalEnergy, g.totalEnergy);
    EXPECT_EQ(rep.energyPerQuery, g.energyPerQuery);
    EXPECT_EQ(rep.generatedTokens, g.generatedTokens);
    EXPECT_EQ(rep.utilization, g.utilization);
    EXPECT_EQ(rep.meanQueueDelay, g.meanQueueDelay);
    EXPECT_EQ(rep.p95QueueDelay, g.p95QueueDelay);
    EXPECT_EQ(rep.p99QueueDelay, g.p99QueueDelay);
    EXPECT_EQ(rep.goodputQps, g.goodputQps);
    EXPECT_EQ(rep.deadlineHitRate, g.deadlineHitRate);
    EXPECT_EQ(rep.throttleResidency, g.throttleResidency);
    // And the prefix accounting stays all-zero in off mode.
    EXPECT_EQ(rep.cachedPrefixTokens, 0.0);
    EXPECT_EQ(rep.prefixHitRate, 0.0);
    EXPECT_EQ(rep.prefillSecondsSaved, 0.0);
    EXPECT_EQ(rep.prefixEvictions, 0u);
}

} // namespace

TEST(PrefixGolden, OffModeMatrixBitIdentity)
{
    const SchedulerPolicy policies[] = {SchedulerPolicy::Fcfs,
                                        SchedulerPolicy::Edf,
                                        SchedulerPolicy::Spjf};
    const char *const names[] = {"HeavyPrompt", "KvPressure"};
    for (int scen = 0; scen < 2; ++scen) {
        const auto s = makeScenario(scen);
        for (int sched = 0; sched < 3; ++sched) {
            for (int exact = 1; exact >= 0; --exact) {
                SCOPED_TRACE(std::string(names[scen]) + "/" +
                             schedulerPolicyName(policies[sched]) +
                             "/" + (exact ? "exact" : "macro"));
                auto eng = makeEngine();
                ServerConfig cfg = s.cfg;
                cfg.scheduler = policies[sched];
                cfg.exactSteps = exact != 0;
                if (policies[sched] == SchedulerPolicy::Spjf)
                    cfg.spjfModel = toyModel();
                ServingSimulator srv(eng, cfg);
                const auto rep = srv.run(
                    s.trace,
                    s.faulted ? FaultPlan(s.fc) : FaultPlan());
                expectGolden(rep, kGolden[scen * 6 + sched * 2 +
                                          (exact ? 0 : 1)]);
            }
        }
    }
}
