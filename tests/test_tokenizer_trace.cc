/**
 * @file
 * Tests for the demo tokenizer and the reasoning-trace generator.
 */

#include <gtest/gtest.h>

#include "accuracy/trace_gen.hh"
#include "engine/tokenizer.hh"

namespace er = edgereason;
using er::engine::Tokenizer;

TEST(Tokenizer, RoundTripsText)
{
    const Tokenizer tok;
    const std::string text =
        "The Jetson AGX Orin delivers 275 TOPS — remarkable, no?";
    const auto pieces = tok.encode(text);
    EXPECT_EQ(Tokenizer::decode(pieces), text);
}

TEST(Tokenizer, TokenRatioNearRealTokenizers)
{
    const Tokenizer tok;
    const std::string text =
        "Deploying large language models for reasoning tasks on edge "
        "GPUs faces critical challenges from strict latency "
        "constraints and limited computational resources available "
        "on embedded platforms today.";
    // ~29 words; real tokenizers give ~1.2-1.4 tokens per word.
    const double ratio = static_cast<double>(tok.countTokens(text)) /
        29.0;
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 1.9);
}

TEST(Tokenizer, LongWordsSplitIntoPieces)
{
    const Tokenizer tok;
    // 16 characters -> 4 pieces of 4.
    EXPECT_EQ(tok.countTokens("abcdefghijklmnop"), 4u);
    EXPECT_EQ(tok.countTokens("cat"), 1u);
}

TEST(Tokenizer, IdsAreDeterministicAndBounded)
{
    const Tokenizer a, b;
    const auto pa = a.encode("hello world");
    const auto pb = b.encode("hello world");
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].id, pb[i].id);
        EXPECT_LT(pa[i].id, a.vocabSize());
    }
}

TEST(Tokenizer, EmptyAndWhitespaceOnly)
{
    const Tokenizer tok;
    EXPECT_EQ(tok.countTokens(""), 0u);
    EXPECT_GE(tok.countTokens("   "), 1u);
    EXPECT_EQ(Tokenizer::decode(tok.encode("   ")), "   ");
}

TEST(TraceGen, HitsTargetTokenCount)
{
    er::Rng rng(1);
    const auto trace = er::acc::generateTrace(
        "Why is decode bandwidth-bound?",
        er::strategy::TokenPolicy::base(), 400, rng);
    EXPECT_NEAR(static_cast<double>(trace.tokens), 400.0, 60.0);
    EXPECT_NE(trace.fullText().find("<think>"), std::string::npos);
    EXPECT_NE(trace.fullText().find("</think>"), std::string::npos);
    EXPECT_FALSE(trace.answer.empty());
}

TEST(TraceGen, NrPolicyEmitsPredefinedThinkBlock)
{
    er::Rng rng(2);
    const auto trace = er::acc::generateTrace(
        "Quick check?", er::strategy::TokenPolicy::noReasoning(), 64,
        rng);
    EXPECT_NE(trace.thinking.find("finished thinking"),
              std::string::npos);
    EXPECT_LT(trace.tokens, 64);
}

TEST(TraceGen, DeterministicPerSeed)
{
    er::Rng a(7), b(7);
    const auto ta = er::acc::generateTrace(
        "Same?", er::strategy::TokenPolicy::base(), 256, a);
    const auto tb = er::acc::generateTrace(
        "Same?", er::strategy::TokenPolicy::base(), 256, b);
    EXPECT_EQ(ta.fullText(), tb.fullText());
}
