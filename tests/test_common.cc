/**
 * @file
 * Unit tests for the common infrastructure: statistics, RNG streams,
 * linear algebra and curve fitting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "common/binio.hh"
#include "common/csv.hh"
#include "common/fit.hh"
#include "common/linalg.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace er = edgereason;

TEST(RunningStats, MeanAndVariance)
{
    er::RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    er::Rng rng(1);
    er::RunningStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian(3.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, MapeBasics)
{
    EXPECT_NEAR(er::mape({110.0, 90.0}, {100.0, 100.0}), 10.0, 1e-12);
    EXPECT_DOUBLE_EQ(er::mape({1.0}, {1.0}), 0.0);
}

TEST(Stats, PercentileInterpolation)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(er::percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(er::percentile(xs, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(er::percentile(xs, 50.0), 2.5);
}

TEST(P2Quantile, SeedPhaseIsTheExactOrderStatistic)
{
    // Under five samples there are no markers yet: value() must be
    // the same linear-interpolated order statistic percentile()
    // computes over the sorted prefix, whatever the arrival order.
    const std::vector<double> stream = {7.0, 2.0, 9.5, 2.0};
    for (const double p : {0.5, 0.9}) {
        er::P2Quantile q(p);
        EXPECT_DOUBLE_EQ(q.value(), 0.0); // empty
        std::vector<double> seen;
        for (const double x : stream) {
            q.add(x);
            seen.push_back(x);
            EXPECT_DOUBLE_EQ(q.value(),
                             er::percentile(seen, 100.0 * p));
        }
        EXPECT_EQ(q.count(), stream.size());
        EXPECT_DOUBLE_EQ(q.quantile(), p);
    }
}

TEST(P2Quantile, TracksLogNormalTailWithinTolerance)
{
    // 20k log-normal samples (the shape of serving latencies): the
    // five-marker estimate must land near the exact p95 of the full
    // sample set, which the estimator never stores.
    er::Rng rng(31, "p2-quantile");
    er::P2Quantile q(0.95);
    std::vector<double> all;
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.logNormalMeanStd(10.0, 6.0);
        q.add(x);
        all.push_back(x);
    }
    const double exact = er::percentile(all, 95.0);
    EXPECT_NEAR(q.value(), exact, 0.05 * exact);
}

TEST(P2Quantile, SerializeRestoreResumesBitExactly)
{
    // The fleet checkpoint carries one estimator per node; a restored
    // copy must continue the stream bit-for-bit, not approximately —
    // that is what keeps crash-resumed adaptive runs bit-identical.
    er::Rng rng(32, "p2-roundtrip");
    er::P2Quantile a(0.9);
    for (int i = 0; i < 1000; ++i)
        a.add(rng.logNormalMeanStd(5.0, 3.0));

    er::ByteWriter w;
    a.serialize(w);
    er::ByteReader r(w.bytes());
    er::P2Quantile b(0.5); // overwritten wholesale by restore()
    b.restore(r);
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(b.count(), a.count());
    EXPECT_DOUBLE_EQ(b.quantile(), a.quantile());
    EXPECT_DOUBLE_EQ(b.value(), a.value());

    for (int i = 0; i < 1000; ++i) {
        const double x = rng.logNormalMeanStd(5.0, 3.0);
        a.add(x);
        b.add(x);
        EXPECT_DOUBLE_EQ(b.value(), a.value()); // bit-exact lockstep
    }
}

TEST(P2Quantile, RejectsQuantileOutsideUnitInterval)
{
    EXPECT_THROW(er::P2Quantile(0.0), std::logic_error);
    EXPECT_THROW(er::P2Quantile(1.0), std::logic_error);
}

TEST(Rng, DeterministicStreams)
{
    er::Rng a(7, "stream-a");
    er::Rng b(7, "stream-a");
    er::Rng c(7, "stream-b");
    bool any_diff = false;
    for (int i = 0; i < 32; ++i) {
        const double va = a.uniform();
        EXPECT_DOUBLE_EQ(va, b.uniform());
        if (std::abs(va - c.uniform()) > 1e-15)
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, LogNormalMomentsMatch)
{
    er::Rng rng(11);
    er::RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.logNormalMeanStd(1.0, 0.1));
    EXPECT_NEAR(s.mean(), 1.0, 0.005);
    EXPECT_NEAR(s.stddev(), 0.1, 0.005);
}

TEST(Linalg, SolveKnownSystem)
{
    er::Matrix a(2, 2);
    a.at(0, 0) = 2.0;
    a.at(0, 1) = 1.0;
    a.at(1, 0) = 1.0;
    a.at(1, 1) = 3.0;
    const auto x = er::solveLinear(a, {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, SingularSystemFails)
{
    er::Matrix a(2, 2);
    a.at(0, 0) = 1.0;
    a.at(0, 1) = 2.0;
    a.at(1, 0) = 2.0;
    a.at(1, 1) = 4.0;
    EXPECT_THROW(er::solveLinear(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Fit, PolyFitRecoversQuadratic)
{
    std::vector<double> x, y;
    for (int i = 1; i <= 20; ++i) {
        x.push_back(i * 64.0);
        y.push_back(1.5e-7 * x.back() * x.back() + 2e-4 * x.back() +
                    0.05);
    }
    const auto c = er::polyFit(x, y, 2);
    EXPECT_NEAR(c[0], 0.05, 1e-6);
    EXPECT_NEAR(c[1], 2e-4, 1e-9);
    EXPECT_NEAR(c[2], 1.5e-7, 1e-12);
}

TEST(Fit, LogFitRecoversCurve)
{
    std::vector<double> x, y;
    for (int i = 1; i <= 30; ++i) {
        x.push_back(i * 100.0);
        y.push_back(4.0 * std::log(x.back()) - 2.0);
    }
    const auto f = er::logFit(x, y);
    EXPECT_NEAR(f.alpha, 4.0, 1e-9);
    EXPECT_NEAR(f.beta, -2.0, 1e-8);
}

TEST(Fit, ExpDecayFitRecoversCurve)
{
    std::vector<double> x, y;
    for (int i = 0; i < 40; ++i) {
        x.push_back(i * 32.0);
        y.push_back(0.07 * std::exp(-0.03 * x.back()) + 0.001);
    }
    const auto f = er::expDecayFit(x, y, 1e-4, 0.5);
    EXPECT_NEAR(f.lambda, 0.03, 0.002);
    EXPECT_NEAR(f.a, 0.07, 0.003);
    EXPECT_NEAR(f.c, 0.001, 2e-4);
}

TEST(Fit, PiecewiseLogFitFindsBreakpoint)
{
    std::vector<double> x, y;
    for (double v : {32.0, 64.0, 128.0, 256.0, 384.0})
        { x.push_back(v); y.push_back(17.0); }
    for (double v : {512.0, 768.0, 1024.0, 2048.0, 4096.0}) {
        x.push_back(v);
        y.push_back(3.8 * std::log(v) - 5.6);
    }
    const auto f = er::piecewiseLogFit(x, y, /*exp_head=*/false);
    EXPECT_NEAR(f.head_const, 17.0, 1e-9);
    EXPECT_NEAR(f.tail.alpha, 3.8, 0.05);
    EXPECT_LE(f.breakpoint, 512.0);
    EXPECT_GE(f.breakpoint, 256.0);
}

TEST(Table, RendersAlignedRows)
{
    er::Table t("demo");
    t.setHeader({"model", "value"});
    t.row().cell("a").cell(1.5, 1);
    t.row().cell("bcd").cell(2.25, 2);
    const std::string s = t.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("| a     |"), std::string::npos); // padded to "model"
    EXPECT_NE(s.find("2.25"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, RowWidthMismatchFails)
{
    er::Table t("bad");
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::runtime_error);
}

TEST(Logging, PanicAndFatalThrow)
{
    EXPECT_THROW(panic("boom"), std::logic_error);
    EXPECT_THROW(fatal("boom"), std::runtime_error);
}

TEST(RngBank, DuplicateStreamCreationPanics)
{
    er::RngBank bank(42);
    bank.create("arrivals");
    EXPECT_THROW(bank.create("arrivals"), std::logic_error);
}

TEST(RngBank, StreamNamesAreSortedAndComplete)
{
    er::RngBank bank(42);
    bank.create("zeta");
    bank.create("alpha");
    bank.create("mid");
    const auto names = bank.streamNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "mid");
    EXPECT_EQ(names[2], "zeta");
    EXPECT_TRUE(bank.has("alpha"));
    EXPECT_FALSE(bank.has("omega"));
    EXPECT_THROW(bank.get("omega"), std::logic_error);
}

TEST(RngBank, SerializeRestoreResumesMidSequence)
{
    er::RngBank bank(42);
    auto &s = bank.create("gen");
    for (int i = 0; i < 17; ++i)
        s.uniform();
    const auto states = bank.serialize();

    // The restored bank continues the sequence exactly where the
    // original stood, even when created fresh.
    er::RngBank other(42);
    other.create("gen");
    other.restore(states);
    for (int i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(bank.get("gen").uniform(),
                         other.get("gen").uniform());
}

TEST(RngBank, RestoreRefusesPartialState)
{
    er::RngBank bank(42);
    bank.create("a");
    bank.create("b");
    er::RngBank donor(42);
    donor.create("a");
    // The donor lacks stream "b": restoring would silently reset it.
    EXPECT_THROW(bank.restore(donor.serialize()), std::runtime_error);
}

TEST(Csv, WriteFailureOnFullDeviceThrows)
{
    // /dev/full accepts the open but fails every write with ENOSPC,
    // which is exactly the disk-full condition writeRow must surface.
    std::ifstream probe("/dev/full");
    if (!probe.good())
        GTEST_SKIP() << "/dev/full not available";
    er::CsvWriter csv("/dev/full");
    try {
        // The stream buffers: keep writing until the flush-on-full
        // path reports the failure.
        for (int i = 0; i < 100000; ++i)
            csv.writeRow(std::vector<std::string>{
                "a-reasonably-long-cell-to-fill-the-buffer", "x", "y"});
        FAIL() << "writeRow never reported the full device";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("/dev/full"),
                  std::string::npos)
            << "error must name the path: " << e.what();
    }
}

// --- OpenHashMap (hot memoization paths) -----------------------------

#include <cstdint>
#include <map>
#include <tuple>

#include "common/open_hash.hh"

namespace {

/** Mirrors the executor's step-cache key shape: three machine words,
 *  no padding. */
struct PackedKey
{
    std::uintptr_t a;
    std::int64_t b;
    std::int64_t c;
};

} // namespace

TEST(OpenHashMap, FindOnEmptyMissesWithoutAllocating)
{
    er::OpenHashMap<PackedKey, double> m;
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(PackedKey{1, 2, 3}), nullptr);
}

TEST(OpenHashMap, InsertThenFindRoundTrips)
{
    er::OpenHashMap<PackedKey, double> m;
    m.insert(PackedKey{1, 64, 8}, 0.25);
    m.insert(PackedKey{1, 128, 8}, 0.5);
    m.insert(PackedKey{2, 64, 8}, 0.75);
    EXPECT_EQ(m.size(), 3u);
    ASSERT_NE(m.find(PackedKey{1, 64, 8}), nullptr);
    EXPECT_DOUBLE_EQ(*m.find(PackedKey{1, 64, 8}), 0.25);
    EXPECT_DOUBLE_EQ(*m.find(PackedKey{1, 128, 8}), 0.5);
    EXPECT_DOUBLE_EQ(*m.find(PackedKey{2, 64, 8}), 0.75);
    // Near misses (one field off) must not alias.
    EXPECT_EQ(m.find(PackedKey{1, 64, 9}), nullptr);
    EXPECT_EQ(m.find(PackedKey{3, 64, 8}), nullptr);
}

TEST(OpenHashMap, GrowthPreservesEveryEntryAgainstStdMap)
{
    // Push far past the initial 64-slot table through several rehashes
    // and mirror into std::map as the oracle.  Keys are generated from
    // a deterministic RNG so runs of clustered values exercise the
    // linear probe.
    er::OpenHashMap<PackedKey, std::int64_t> m;
    std::map<std::tuple<std::uintptr_t, std::int64_t, std::int64_t>,
             std::int64_t>
        oracle;
    er::Rng rng(99, "open-hash");
    for (int i = 0; i < 5000; ++i) {
        const PackedKey k{
            static_cast<std::uintptr_t>(rng.uniformInt(0, 7)),
            64 * rng.uniformInt(1, 40), rng.uniformInt(1, 30)};
        const auto tup = std::make_tuple(k.a, k.b, k.c);
        if (oracle.find(tup) != oracle.end()) {
            ASSERT_NE(m.find(k), nullptr);
            EXPECT_EQ(*m.find(k), oracle[tup]);
            continue;
        }
        oracle[tup] = i;
        m.insert(k, i);
    }
    EXPECT_EQ(m.size(), oracle.size());
    EXPECT_GT(m.size(), 500u); // actually grew past the initial table
    for (const auto &[tup, v] : oracle) {
        const PackedKey k{std::get<0>(tup), std::get<1>(tup),
                          std::get<2>(tup)};
        ASSERT_NE(m.find(k), nullptr);
        EXPECT_EQ(*m.find(k), v);
    }
}

TEST(OpenHashMap, InsertedReferenceIsWritable)
{
    er::OpenHashMap<PackedKey, double> m;
    double &slot = m.insert(PackedKey{5, 6, 7}, 1.0);
    slot = 2.0;
    ASSERT_NE(m.find(PackedKey{5, 6, 7}), nullptr);
    EXPECT_DOUBLE_EQ(*m.find(PackedKey{5, 6, 7}), 2.0);
}
