/**
 * @file
 * Randomized crash/recovery chaos suite.  25 seeds each generate a
 * distinct fault-ridden serving scenario and a random crash point; the
 * run is executed uninterrupted, then crashed + resumed with paranoid
 * invariant auditing, and the two reports must match bit for bit.  On
 * a failure the seed's journal and checkpoints are left under
 * ./chaos-artifacts/ (the CI chaos job uploads that directory), so a
 * failing seed can be replayed and inspected offline:
 *
 *   edgereason replay chaos-artifacts/seed-<N>/journal.bin --dump
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "engine/checkpoint.hh"
#include "engine/journal.hh"
#include "engine/server.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::engine;
namespace fs = std::filesystem;

namespace {

InferenceEngine
makeEngine()
{
    EngineConfig cfg;
    cfg.measurementNoise = false;
    return InferenceEngine(
        er::model::spec(er::model::ModelId::DeepScaleR1_5B),
        er::model::calibration(er::model::ModelId::DeepScaleR1_5B),
        cfg);
}

void
expectIdentical(const ServingReport &a, const ServingReport &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.throughputQps, b.throughputQps);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.p99Latency, b.p99Latency);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.goodputQps, b.goodputQps);
    EXPECT_EQ(a.deadlineHitRate, b.deadlineHitRate);
    EXPECT_EQ(a.throttleResidency, b.throttleResidency);
    EXPECT_EQ(a.meanQueueDelay, b.meanQueueDelay);
    EXPECT_EQ(a.peakQueueDepth, b.peakQueueDepth);
}

} // namespace

TEST(Chaos, RandomCrashPointsRecoverBitIdentically)
{
    const fs::path artifacts = "chaos-artifacts";
    fs::remove_all(artifacts);

    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        SCOPED_TRACE("chaos seed " + std::to_string(seed));
        er::Rng dice(seed, "chaos/dice");

        // A seed-specific scenario: moderate load with thermal
        // coupling, brownouts, KV shrink windows, and deadlines on
        // every third seed.
        ServerConfig cfg;
        cfg.maxBatch = 4 + static_cast<int>(dice.uniform() * 12.0);
        cfg.prefillChunk = dice.uniform() < 0.5 ? 0 : 128;
        cfg.scheduler = seed % 3 == 0 ? SchedulerPolicy::Edf
                                      : SchedulerPolicy::Fcfs;
        cfg.degrade.mode = seed % 2 == 0 ? DegradeMode::Budget
                                         : DegradeMode::None;

        er::Rng traceRng(seed, "chaos/trace");
        auto trace = ServingSimulator::poissonTrace(
            traceRng, 24, 1.0 + 2.0 * dice.uniform(), 120, 400);
        if (seed % 3 == 0) {
            for (auto &r : trace)
                r.deadline = 45.0;
        }

        FaultConfig fc;
        fc.seed = seed * 7919;
        fc.horizon = trace.back().arrival + 600.0;
        fc.thermal = true;
        fc.thermalSpec.rThermal = 2.5;
        fc.thermalSpec.cThermal = 20.0;
        fc.thermalSpec.ambientC = 50.0;
        fc.thermalSpec.initialC = 50.0;
        fc.brownoutsPerHour = 120.0;
        fc.kvShrinksPerHour = 120.0;
        fc.kvShrinkFraction = 0.5;
        fc.kvShrinkDuration = 20.0;

        auto eng = makeEngine();
        ServingSimulator baseline_srv(eng, cfg);
        const auto baseline =
            baseline_srv.run(trace, FaultPlan(fc));

        const std::string dir =
            (artifacts / ("seed-" + std::to_string(seed))).string();
        fs::create_directories(dir);
        DurabilityOptions dur;
        dur.checkpointDir = dir;
        dur.checkpointEvery = 1 + static_cast<std::uint64_t>(
            dice.uniform() * 16.0);
        dur.paranoid = true;

        FaultConfig crash_fc = fc;
        crash_fc.crash.atStep =
            static_cast<std::int64_t>(dice.uniform() * 400.0);

        ServingSimulator crash_srv(eng, cfg);
        ServingReport rep;
        bool crashed = false;
        try {
            rep = crash_srv.run(trace, FaultPlan(crash_fc), dur);
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
        if (crashed) {
            ServingSimulator resume_srv(eng, cfg);
            DurabilityOptions res = dur;
            res.resume = true;
            rep = resume_srv.run(trace, FaultPlan(fc), res);
        }
        expectIdentical(baseline, rep);
        expectIdentical(baseline,
                        replayServingReport(dir + "/journal.bin"));
    }

    // Keep the journals for artifact upload only when something
    // failed; a green run cleans up after itself.
    if (!::testing::Test::HasFailure())
        fs::remove_all(artifacts);
}
