/**
 * @file
 * Tests for the crash-safety plumbing (DESIGN.md §9): binio primitives,
 * the write-ahead journal (round trip, text dump, corruption detection),
 * and the checkpoint file container (atomic write, validation).  Every
 * malformed-input case asserts the loader fatal()s with a message that
 * names the byte offset — and, for checksum failures, the expected and
 * found values — and never partially restores.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/binio.hh"
#include "engine/checkpoint.hh"
#include "engine/journal.hh"

namespace er = edgereason;
using namespace er::engine;
namespace fs = std::filesystem;

namespace {

/** Fresh scratch directory under the system temp dir. */
std::string
scratchDir(const std::string &tag)
{
    const auto dir = fs::temp_directory_path() /
        ("edgereason_test_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << data;
}

/** A small journal with one record of each common type. */
std::string
makeJournal(const std::string &dir, std::uint64_t fingerprint)
{
    const std::string path = dir + "/journal.bin";
    Journal j = Journal::createFresh(path, fingerprint);
    j.emitRunBegin(3, SchedulerPolicy::Edf, 0.25);
    TrackedRequest t;
    t.req.arrival = 0.25;
    t.req.inputTokens = 100;
    t.req.outputTokens = 200;
    t.traceIndex = 0;
    j.emitArrival(t, 1);
    j.emitCheckpointMark(0);
    t.effOut = 200;
    j.emitAdmit(t, 0.25);
    ExecAccumulators acc;
    acc.clock = 1.5;
    acc.busy = 1.0;
    acc.energy = 30.0;
    acc.generatedTokens = 7.0;
    j.emitStep(1, 1, acc);
    ServedRequest s;
    s.request = t.req;
    s.outcome = RequestOutcome::Completed;
    s.finish = 1.5;
    s.generated = 200;
    s.traceIndex = 0;
    j.emitRetire(s);
    j.emitRunEnd(acc, 2);
    return path;
}

/** Expect fn() to throw std::runtime_error whose message contains all
 *  of the given substrings. */
template <typename Fn>
void
expectFatalContaining(Fn &&fn, std::initializer_list<const char *> subs)
{
    try {
        fn();
        FAIL() << "expected a fatal()";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        for (const char *sub : subs)
            EXPECT_NE(msg.find(sub), std::string::npos)
                << "message lacks \"" << sub << "\": " << msg;
    }
}

} // namespace

// ---------------------------------------------------------------------
// binio primitives.
// ---------------------------------------------------------------------

TEST(BinIo, RoundTripsEveryType)
{
    er::ByteWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFULL);
    w.i64(-42);
    w.f64(-0.1);
    w.str("hello");
    er::ByteReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), -0.1); // bit-exact, not approximate
    EXPECT_EQ(r.str(), "hello");
    EXPECT_TRUE(r.atEnd());
    EXPECT_NO_THROW(r.expectEnd("test"));
}

TEST(BinIo, TruncatedReadReportsOffset)
{
    er::ByteWriter w;
    w.u32(7);
    er::ByteReader r(w.bytes());
    r.u8();
    expectFatalContaining([&] { r.u64(); }, {"offset 1"});
}

TEST(BinIo, TrailingBytesAreAnError)
{
    er::ByteWriter w;
    w.u32(7);
    er::ByteReader r(w.bytes());
    r.u8();
    expectFatalContaining([&] { r.expectEnd("unit"); },
                          {"unit", "trailing"});
}

TEST(BinIo, Fnv1aMatchesKnownVector)
{
    // FNV-1a reference: empty input hashes to the offset basis.
    EXPECT_EQ(er::fnv1a(""), 0xCBF29CE484222325ULL);
    EXPECT_NE(er::fnv1a("a"), er::fnv1a("b"));
}

// ---------------------------------------------------------------------
// Journal round trip and corruption detection.
// ---------------------------------------------------------------------

TEST(Journal, RoundTripsRecords)
{
    const auto dir = scratchDir("journal_rt");
    const auto path = makeJournal(dir, 0x1234);
    const auto contents = readJournal(path);
    EXPECT_EQ(contents.version, kJournalVersion);
    EXPECT_EQ(contents.fingerprint, 0x1234u);
    ASSERT_EQ(contents.records.size(), 7u);
    EXPECT_EQ(contents.records[0].type, JournalRecordType::RunBegin);
    EXPECT_EQ(contents.records[1].type, JournalRecordType::Arrival);
    EXPECT_EQ(contents.records[2].type,
              JournalRecordType::CheckpointMark);
    EXPECT_EQ(contents.records.back().type, JournalRecordType::RunEnd);
    fs::remove_all(dir);
}

TEST(Journal, DumpRendersOneLinePerRecord)
{
    const auto dir = scratchDir("journal_dump");
    const auto path = makeJournal(dir, 0x1234);
    std::ostringstream os;
    dumpJournalText(path, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("run-begin"), std::string::npos);
    EXPECT_NE(text.find("arrival"), std::string::npos);
    EXPECT_NE(text.find("checkpoint-mark step=0"), std::string::npos);
    EXPECT_NE(text.find("retire"), std::string::npos);
    EXPECT_NE(text.find("run-end"), std::string::npos);
    fs::remove_all(dir);
}

TEST(Journal, TruncatedFileReportsOffset)
{
    const auto dir = scratchDir("journal_trunc");
    const auto path = makeJournal(dir, 0x1234);
    const std::string data = readFile(path);
    // Cut inside the final record's checksum.
    writeFile(path, data.substr(0, data.size() - 3));
    expectFatalContaining([&] { readJournal(path); },
                          {"journal", "offset"});
    fs::remove_all(dir);
}

TEST(Journal, BitFlipReportsExpectedAndFoundChecksum)
{
    const auto dir = scratchDir("journal_flip");
    const auto path = makeJournal(dir, 0x1234);
    const auto contents = readJournal(path);
    // Flip a bit inside the Step record's payload (offset + type byte +
    // length field + 2), so the record checksum must catch it.
    const auto &step = contents.records[4];
    ASSERT_EQ(step.type, JournalRecordType::Step);
    std::string data = readFile(path);
    data[step.offset + 5 + 2] ^= 0x40;
    writeFile(path, data);
    expectFatalContaining(
        [&] { readJournal(path); },
        {"corrupt at offset", "expected checksum 0x", "found 0x"});
    fs::remove_all(dir);
}

TEST(Journal, BadMagicAndVersionAreRejected)
{
    const auto dir = scratchDir("journal_magic");
    const auto path = makeJournal(dir, 0x1234);
    std::string data = readFile(path);

    std::string bad = data;
    bad[0] = 'X';
    writeFile(path, bad);
    expectFatalContaining([&] { readJournal(path); }, {"magic"});

    bad = data;
    bad[8] = static_cast<char>(kJournalVersion + 1); // version field
    writeFile(path, bad);
    expectFatalContaining([&] { readJournal(path); }, {"version"});
    fs::remove_all(dir);
}

TEST(Journal, ResumeRefusesForeignFingerprint)
{
    const auto dir = scratchDir("journal_fp");
    const auto path = makeJournal(dir, 0x1234);
    expectFatalContaining(
        [&] { Journal::resumeAt(path, 0x9999, 0, true); },
        {"fingerprint"});
    fs::remove_all(dir);
}

TEST(Journal, ResumeNeedsAMatchingCheckpointMark)
{
    const auto dir = scratchDir("journal_mark");
    const auto path = makeJournal(dir, 0x1234);
    expectFatalContaining(
        [&] { Journal::resumeAt(path, 0x1234, 77, true); },
        {"checkpoint-mark", "77"});
    fs::remove_all(dir);
}

TEST(Journal, ReplayFailsWithoutRunBegin)
{
    const auto dir = scratchDir("journal_nobegin");
    const std::string path = dir + "/journal.bin";
    Journal j = Journal::createFresh(path, 1);
    ExecAccumulators acc;
    j.emitStep(1, 1, acc);
    expectFatalContaining([&] { replayServingReport(path); },
                          {"run-begin"});
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Checkpoint files.
// ---------------------------------------------------------------------

TEST(Checkpoint, RoundTripsPayload)
{
    const auto dir = scratchDir("ckpt_rt");
    er::ByteWriter payload;
    payload.u64(42);
    payload.str("state");
    const auto path = checkpointPath(dir, 16);
    writeCheckpointFile(path, 0xF00D, payload);
    const std::string back = loadCheckpointFile(path, 0xF00D);
    er::ByteReader r(back);
    EXPECT_EQ(r.u64(), 42u);
    EXPECT_EQ(r.str(), "state");
    EXPECT_NO_THROW(r.expectEnd("payload"));
    // No temp file left behind (atomic rename).
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    fs::remove_all(dir);
}

TEST(Checkpoint, ListsInStepOrder)
{
    const auto dir = scratchDir("ckpt_list");
    er::ByteWriter payload;
    payload.u64(1);
    writeCheckpointFile(checkpointPath(dir, 100), 1, payload);
    writeCheckpointFile(checkpointPath(dir, 8), 1, payload);
    writeCheckpointFile(checkpointPath(dir, 64), 1, payload);
    writeFile(dir + "/ckpt-junk.bin", "not a checkpoint");
    writeFile(dir + "/other.txt", "ignored");
    const auto list = listCheckpoints(dir);
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0].first, 8u);
    EXPECT_EQ(list[1].first, 64u);
    EXPECT_EQ(list[2].first, 100u);
    fs::remove_all(dir);
}

TEST(Checkpoint, RejectsForeignFingerprintAndCorruption)
{
    const auto dir = scratchDir("ckpt_bad");
    er::ByteWriter payload;
    payload.u64(7);
    const auto path = checkpointPath(dir, 0);
    writeCheckpointFile(path, 0xAAA, payload);

    expectFatalContaining([&] { loadCheckpointFile(path, 0xBBB); },
                          {"fingerprint", "refusing to restore"});

    std::string data = readFile(path);
    std::string flipped = data;
    flipped[flipped.size() - 12] ^= 0x01; // payload byte
    writeFile(path, flipped);
    expectFatalContaining(
        [&] { loadCheckpointFile(path, 0xAAA); },
        {"corrupt at offset", "expected checksum 0x", "found 0x"});

    writeFile(path, data.substr(0, data.size() - 4));
    expectFatalContaining([&] { loadCheckpointFile(path, 0xAAA); },
                          {"truncated"});
    fs::remove_all(dir);
}
