/**
 * @file
 * Tests for the continuous-batching serving simulator: conservation,
 * batching economics (Section III-B), queueing behaviour under load,
 * and KV-memory admission control.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "engine/server.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::engine;
using er::model::ModelId;

namespace {

InferenceEngine
makeEngine(ModelId id = ModelId::DeepScaleR1_5B)
{
    EngineConfig cfg;
    cfg.measurementNoise = false;
    return InferenceEngine(er::model::spec(id),
                           er::model::calibration(id), cfg);
}

std::vector<ServerRequest>
uniformTrace(std::size_t n, double interval, er::Tokens in,
             er::Tokens out)
{
    std::vector<ServerRequest> t;
    for (std::size_t i = 0; i < n; ++i)
        t.push_back({interval * static_cast<double>(i), in, out});
    return t;
}

} // namespace

TEST(Server, CompletesEveryRequest)
{
    auto eng = makeEngine();
    ServingSimulator srv(eng);
    const auto rep = srv.run(uniformTrace(20, 1.0, 128, 64));
    EXPECT_EQ(rep.completed, 20u);
    EXPECT_EQ(srv.served().size(), 20u);
    EXPECT_GT(rep.makespan, 0.0);
    EXPECT_GT(rep.totalEnergy, 0.0);
    // Every request's latency covers at least its own service time.
    for (const auto &s : srv.served()) {
        EXPECT_GE(s.queueDelay, -1e-9);
        EXPECT_GT(s.serviceTime, 0.0);
    }
}

TEST(Server, SingleRequestMatchesEngineRun)
{
    auto eng = makeEngine();
    ServingSimulator srv(eng);
    const auto rep = srv.run({{0.0, 512, 128}});
    const auto direct = eng.run(512, 128);
    // Serving adds no queueing for a lone request; latency matches the
    // engine within checkpoint-vs-step integration error.
    EXPECT_NEAR(rep.meanLatency, direct.totalSeconds(),
                0.05 * direct.totalSeconds());
}

TEST(Server, BatchingAmortizesEnergyPerQuery)
{
    // Section III-B: batching cuts cost per query dramatically.
    auto eng = makeEngine();
    ServingSimulator srv(eng);
    // Sequential load: requests spaced far apart (no batching).
    const auto seq = srv.run(uniformTrace(16, 100.0, 120, 512));
    // Burst load: all at once (full batching).
    const auto burst = srv.run(uniformTrace(16, 0.0, 120, 512));
    EXPECT_GT(seq.energyPerQuery / burst.energyPerQuery, 2.0);
    EXPECT_GT(burst.avgBatch, 8.0);
    EXPECT_LT(seq.avgBatch, 1.2);
}

TEST(Server, ThroughputSaturatesWithLoad)
{
    auto eng = makeEngine();
    ServingSimulator srv(eng);
    er::Rng rng(5);
    const auto low = srv.run(ServingSimulator::poissonTrace(
        rng, 40, 0.02, 128, 256));
    er::Rng rng2(5);
    const auto high = srv.run(ServingSimulator::poissonTrace(
        rng2, 40, 5.0, 128, 256));
    // At low load, throughput ~ offered load; at high load it
    // saturates below the offered 5 QPS and queueing appears.
    EXPECT_NEAR(low.throughputQps, 0.02, 0.005);
    EXPECT_LT(high.throughputQps, 5.0);
    EXPECT_GT(high.p95Latency, low.p95Latency);
    EXPECT_GT(high.avgBatch, low.avgBatch);
}

TEST(Server, RespectsMaxBatch)
{
    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.maxBatch = 2;
    ServingSimulator srv(eng, cfg);
    const auto rep = srv.run(uniformTrace(12, 0.0, 64, 256));
    EXPECT_LE(rep.avgBatch, 2.0 + 1e-9);
    EXPECT_EQ(rep.completed, 12u);
}

TEST(Server, KvMemoryLimitsAdmission)
{
    // The 14B leaves ~26 GB of KV: ~138k tokens.  32k-token requests
    // can only run a few at a time.
    EngineConfig ecfg;
    ecfg.measurementNoise = false;
    InferenceEngine eng(er::model::spec(ModelId::Dsr1Qwen14B),
                        er::model::calibration(ModelId::Dsr1Qwen14B),
                        ecfg);
    EXPECT_LE(ServingSimulator::maxBatchForMemory(eng, 512, 31000), 5);
    ServingSimulator srv(eng);
    const auto rep = srv.run(uniformTrace(6, 0.0, 512, 31000));
    EXPECT_EQ(rep.completed, 6u);
    EXPECT_LT(rep.avgBatch, 4.5);
}

TEST(Server, MaxBatchForMemoryExtremes)
{
    auto eng = makeEngine();
    // Zero-length sequences hold no KV: they fit trivially (1), and
    // must not divide by zero.
    EXPECT_EQ(ServingSimulator::maxBatchForMemory(eng, 0, 0), 1);
    // A sequence beyond the whole budget fits zero times -- the old
    // "round up to 1" answer hid an impossible configuration.
    const er::Tokens over =
        static_cast<er::Tokens>(eng.kvBudget() /
                                eng.spec().kvBytesPerToken()) + 1000;
    EXPECT_EQ(ServingSimulator::maxBatchForMemory(eng, over, 0), 0);
    EXPECT_EQ(ServingSimulator::maxBatchForMemory(eng, 0, over), 0);
    // Just inside the budget still fits exactly once.
    const er::Tokens under =
        static_cast<er::Tokens>(eng.kvBudget() /
                                eng.spec().kvBytesPerToken()) - 1000;
    EXPECT_EQ(ServingSimulator::maxBatchForMemory(eng, under, 0), 1);
}

TEST(Server, OversizedRequestFails)
{
    auto eng = makeEngine();
    ServingSimulator srv(eng);
    // A single request beyond the whole KV budget must be rejected
    // loudly rather than looping forever.
    const er::Tokens impossible =
        static_cast<er::Tokens>(eng.kvBudget() /
                                eng.spec().kvBytesPerToken()) + 1000;
    EXPECT_THROW(srv.run({{0.0, 128, impossible}}),
                 std::runtime_error);
}

TEST(Server, ChunkedPrefillPreservesWorkAndHelpsTails)
{
    // A stream of short requests with occasional very long prompts:
    // without chunking, every long prefill stalls the whole decode
    // batch; with chunking the stall is bounded per step.
    std::vector<ServerRequest> trace;
    for (int i = 0; i < 30; ++i) {
        trace.push_back({0.2 * i, 128, 128});
        if (i % 10 == 5)
            trace.push_back({0.2 * i + 0.01, 8000, 32});
    }

    auto eng = makeEngine(ModelId::Dsr1Llama8B);
    ServingSimulator plain(eng);
    const auto rep_plain = plain.run(trace);

    ServerConfig cfg;
    cfg.prefillChunk = 512;
    ServingSimulator chunked(eng, cfg);
    const auto rep_chunked = chunked.run(trace);

    EXPECT_EQ(rep_plain.completed, trace.size());
    EXPECT_EQ(rep_chunked.completed, trace.size());
    // Short requests' p95 must not regress materially when long
    // prefills are chunked.  Chunk costs are priced with
    // prefillSuffixLatency (attention over the cached prefix plus a
    // per-chunk overhead), so on a trace this saturated chunking adds
    // a few percent of total prefill work; the tail *win* shows on
    // traces with decode cohorts in flight and idle slack
    // (test_scheduler.cc's ChunkedPrefill cases).
    std::vector<double> short_plain, short_chunked;
    for (const auto &s : plain.served()) {
        if (s.request.inputTokens <= 128)
            short_plain.push_back(s.latency());
    }
    for (const auto &s : chunked.served()) {
        if (s.request.inputTokens <= 128)
            short_chunked.push_back(s.latency());
    }
    EXPECT_LT(er::percentile(short_chunked, 95.0),
              er::percentile(short_plain, 95.0) * 1.05);
}

TEST(Server, PriorityClassesJumpTheQueue)
{
    // Saturate the server with background work, then inject one
    // urgent request: it must be served far sooner than same-arrival
    // background requests.
    auto eng = makeEngine(ModelId::Dsr1Llama8B);
    ServerConfig cfg;
    cfg.maxBatch = 2; // keep the queue long
    ServingSimulator srv(eng, cfg);

    std::vector<ServerRequest> trace;
    for (int i = 0; i < 20; ++i)
        trace.push_back({0.0, 128, 512, 0}); // background backlog
    trace.push_back({5.0, 64, 64, /*priority=*/5}); // urgent

    const auto rep = srv.run(trace);
    EXPECT_EQ(rep.completed, trace.size());
    double urgent_latency = -1.0;
    std::vector<double> background;
    for (const auto &s : srv.served()) {
        if (s.request.priority > 0)
            urgent_latency = s.latency();
        else
            background.push_back(s.latency());
    }
    ASSERT_GT(urgent_latency, 0.0);
    // The urgent request beats the median background request.
    EXPECT_LT(urgent_latency, er::percentile(background, 50.0) * 0.5);
}

TEST(Server, FifoWithinPriorityClass)
{
    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.maxBatch = 1;
    ServingSimulator srv(eng, cfg);
    std::vector<ServerRequest> trace;
    for (int i = 0; i < 6; ++i)
        trace.push_back({0.01 * i, 64, 64, 0});
    srv.run(trace);
    // Completion order respects arrival order within one class.
    for (std::size_t i = 1; i < srv.served().size(); ++i) {
        EXPECT_LE(srv.served()[i - 1].request.arrival,
                  srv.served()[i].request.arrival);
    }
}

TEST(Server, PoissonTraceIsDeterministicAndSorted)
{
    er::Rng a(9), b(9);
    const auto ta = ServingSimulator::poissonTrace(a, 50, 1.0, 100,
                                                   200);
    const auto tb = ServingSimulator::poissonTrace(b, 50, 1.0, 100,
                                                   200);
    ASSERT_EQ(ta.size(), 50u);
    for (std::size_t i = 0; i < ta.size(); ++i) {
        EXPECT_DOUBLE_EQ(ta[i].arrival, tb[i].arrival);
        if (i)
            EXPECT_GE(ta[i].arrival, ta[i - 1].arrival);
    }
}
