/**
 * @file
 * Unit tests for the analytical power and energy models (Eqns. 4-6):
 * functional forms, fitting, validation and composition.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "perfmodel/power_energy_model.hh"

namespace er = edgereason;
using namespace er::perf;

TEST(PrefillPowerModel, ConstantAndLogRegimes)
{
    PrefillPowerModel m;
    m.v = 800;
    m.u = 12.0;
    m.w = 5.52;
    m.x = -24.9;
    EXPECT_DOUBLE_EQ(m(64), 12.0);
    EXPECT_DOUBLE_EQ(m(800), 12.0);
    EXPECT_NEAR(m(4096), 5.52 * std::log(4096.0) - 24.9, 1e-9);
    // The log tail never undercuts the constant head.
    m.x = -100.0;
    EXPECT_DOUBLE_EQ(m(1024), 12.0);
}

TEST(DecodePowerModel, FloorBelow64)
{
    DecodePowerModel m;
    m.y = 2.2;
    m.z = 10.3;
    EXPECT_DOUBLE_EQ(m(63), 5.9);
    EXPECT_NEAR(m(64), 2.2 * std::log(64.0) + 10.3, 1e-9);
}

TEST(FitPrefillPower, SelectsConstantForFlatData)
{
    std::vector<PowerSample> flat;
    for (er::Tokens i = 64; i <= 4096; i += 256)
        flat.push_back({i, 5.64});
    const auto m = fitPrefillPower(flat);
    EXPECT_EQ(m.v, 0);
    EXPECT_NEAR(m.u, 5.64, 1e-9);
}

TEST(FitPrefillPower, RecoversPiecewiseShape)
{
    std::vector<PowerSample> samples;
    for (er::Tokens i : {64, 128, 256, 384, 512, 640, 768})
        samples.push_back({i, 12.0});
    for (er::Tokens i : {1024, 1536, 2048, 3072, 4096})
        samples.push_back(
            {i, 5.52 * std::log(static_cast<double>(i)) - 24.9});
    const auto m = fitPrefillPower(samples);
    EXPECT_GT(m.v, 0);
    EXPECT_NEAR(m.u, 12.0, 0.2);
    EXPECT_NEAR(m.w, 5.52, 0.4);
    EXPECT_LT(validatePrefillPower(m, samples), 2.0);
}

TEST(FitDecodePower, RecoversLogTailAndFloor)
{
    std::vector<PowerSample> samples;
    samples.push_back({32, 5.9});
    samples.push_back({48, 5.9});
    for (er::Tokens o : {64, 128, 256, 512, 1024, 2048})
        samples.push_back(
            {o, 2.26 * std::log(static_cast<double>(o)) + 12.0});
    const auto m = fitDecodePower(samples);
    EXPECT_NEAR(m.floor, 5.9, 1e-9);
    EXPECT_NEAR(m.y, 2.26, 0.05);
    EXPECT_NEAR(m.z, 12.0, 0.3);
    EXPECT_LT(validateDecodePower(m, samples), 1.0);
}

TEST(FitEnergyPerToken, ExpDecayOnly)
{
    // The 1.5B prefill shape from Table XX: A e^{-l I} + C.
    std::vector<EnergySample> samples;
    for (er::Tokens i = 16; i <= 512; i += 16)
        samples.push_back(
            {i, 0.07308 * std::exp(-0.03195 * i) + 0.000923});
    const auto m = fitEnergyPerToken(samples, /*force_exp_only=*/true);
    EXPECT_EQ(m.ve, 0);
    EXPECT_NEAR(m.head.lambda, 0.03195, 0.004);
    EXPECT_NEAR(m.head.c, 0.000923, 2e-4);
    EXPECT_LT(validateEnergyPerToken(m, samples), 3.0);
}

TEST(FitEnergyPerToken, PiecewiseWithLogTail)
{
    // The 8B shape: exp decay to ~640, log growth beyond.
    std::vector<EnergySample> samples;
    for (er::Tokens i = 32; i <= 640; i += 64)
        samples.push_back(
            {i, 0.15871 * std::exp(-0.0324 * i) + 0.00553});
    for (er::Tokens i = 768; i <= 4096; i += 256)
        samples.push_back(
            {i, 0.01233 * std::log(static_cast<double>(i)) - 0.07349});
    const auto m = fitEnergyPerToken(samples);
    EXPECT_GT(m.ve, 0);
    EXPECT_NEAR(m.tail.alpha, 0.01233, 0.003);
    EXPECT_LT(validateEnergyPerToken(m, samples), 6.0);
}

TEST(TotalEnergyModel, ComposesPowerTimesLatency)
{
    TotalEnergyModel e;
    e.latency.prefill = {1e-7, 1e-4, 0.05, 128};
    e.latency.decode = {1e-6, 0.1};
    e.prefillPower.u = 10.0;
    e.decodePower.y = 2.0;
    e.decodePower.z = 10.0;
    const double pf = e.prefillEnergy(512);
    EXPECT_NEAR(pf, 10.0 * e.latency.prefill(512), 1e-9);
    const double dc = e.decodeEnergy(512, 256);
    EXPECT_NEAR(dc, e.decodePower(256) * e.latency.decode(512, 256),
                1e-9);
    EXPECT_NEAR(e.total(512, 256), pf + dc, 1e-12);
    EXPECT_DOUBLE_EQ(e.decodeEnergy(512, 0), 0.0);
}
