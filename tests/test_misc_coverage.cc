/**
 * @file
 * Coverage for the smaller utilities: CSV writer round-trips,
 * framework overhead profiles, Pareto edge cases, and dtype helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"
#include "common/types.hh"
#include "core/pareto.hh"
#include "engine/engine_kind.hh"

namespace er = edgereason;

TEST(Dtypes, WeightBytesAndNames)
{
    EXPECT_DOUBLE_EQ(er::dtypeWeightBytes(er::DType::FP32), 4.0);
    EXPECT_DOUBLE_EQ(er::dtypeWeightBytes(er::DType::FP16), 2.0);
    EXPECT_DOUBLE_EQ(er::dtypeWeightBytes(er::DType::INT8), 1.0);
    EXPECT_DOUBLE_EQ(er::dtypeWeightBytes(er::DType::W4A16), 0.5);
    EXPECT_STREQ(er::dtypeName(er::DType::W4A16), "w4a16");
    EXPECT_STREQ(er::phaseName(er::Phase::Decode), "decode");
}

TEST(CsvWriter, EscapesAndRoundTrips)
{
    const std::string path = "/tmp/edgereason_csv_test.csv";
    {
        er::CsvWriter csv(path);
        csv.writeRow(std::vector<std::string>{
            "plain", "with,comma", "with\"quote", "multi\nline"});
        csv.writeRow(std::vector<double>{1.5, 2.25}, 2);
        csv.close();
    }
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string content = ss.str();
    EXPECT_NE(content.find("plain,\"with,comma\""), std::string::npos);
    EXPECT_NE(content.find("\"with\"\"quote\""), std::string::npos);
    EXPECT_NE(content.find("1.50,2.25"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CsvWriter, UnwritablePathFails)
{
    EXPECT_THROW(er::CsvWriter("/nonexistent-dir/x.csv"),
                 std::runtime_error);
}

TEST(EngineKinds, NamesAndOverheadOrdering)
{
    using namespace er::engine;
    EXPECT_STREQ(engineKindName(EngineKind::Vllm), "vLLM");
    EXPECT_STREQ(engineKindName(EngineKind::HfTransformers), "HF");
    EXPECT_STREQ(engineKindName(EngineKind::TrtLlm), "TRT-LLM");
    // HF carries the largest per-step overhead, TRT the smallest.
    const auto hf = engineOverhead(EngineKind::HfTransformers);
    const auto vllm = engineOverhead(EngineKind::Vllm);
    const auto trt = engineOverhead(EngineKind::TrtLlm);
    EXPECT_GT(hf.extraStepOverhead, vllm.extraStepOverhead);
    EXPECT_LE(trt.extraStepOverhead, vllm.extraStepOverhead);
}

namespace {

er::core::StrategyReport
fakeReport(double lat, double acc, double cost_per_mtok = 0.1)
{
    er::core::StrategyReport r;
    r.avgLatency = lat;
    r.accuracyPct = acc;
    r.cost.energyPerMTok = cost_per_mtok;
    r.cost.hardwarePerMTok = 0.01;
    r.avgTokens = 100.0;
    return r;
}

} // namespace

TEST(Pareto, DominatedPointsAreDropped)
{
    using namespace er::core;
    // (5s, 50%) dominates (6s, 45%); (1s, 30%) survives as the fast
    // anchor; equal-latency ties keep the higher accuracy.
    std::vector<StrategyReport> reports = {
        fakeReport(5.0, 50.0), fakeReport(6.0, 45.0),
        fakeReport(1.0, 30.0), fakeReport(5.0, 48.0),
        fakeReport(20.0, 70.0)};
    const auto frontier = paretoFrontier(reports,
                                         FrontierAxis::Latency);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_DOUBLE_EQ(frontier[0].avgLatency, 1.0);
    EXPECT_DOUBLE_EQ(frontier[1].accuracyPct, 50.0);
    EXPECT_DOUBLE_EQ(frontier[2].accuracyPct, 70.0);
}

TEST(Pareto, AxisSelection)
{
    using namespace er::core;
    const auto r = fakeReport(2.0, 40.0, 0.05);
    EXPECT_DOUBLE_EQ(axisValue(r, FrontierAxis::Latency), 2.0);
    EXPECT_DOUBLE_EQ(axisValue(r, FrontierAxis::Tokens), 100.0);
    EXPECT_GT(axisValue(r, FrontierAxis::Cost), 0.05); // + hardware
}

TEST(Pareto, RegimesSkipInfeasibleBudgets)
{
    using namespace er::core;
    std::vector<StrategyReport> reports = {fakeReport(5.0, 50.0)};
    const auto regimes = budgetRegimes(reports, {1.0, 2.0, 10.0, 20.0},
                                       FrontierAxis::Latency);
    // Budgets 1 and 2 are infeasible; 10 and 20 merge into one regime.
    ASSERT_EQ(regimes.size(), 1u);
    EXPECT_DOUBLE_EQ(regimes[0].budgetHi, 20.0);
    EXPECT_DOUBLE_EQ(regimes[0].best.accuracyPct, 50.0);
}

TEST(Pareto, EmptyBudgetsRejected)
{
    using namespace er::core;
    std::vector<StrategyReport> reports = {fakeReport(5.0, 50.0)};
    EXPECT_THROW(budgetRegimes(reports, {}, FrontierAxis::Latency),
                 std::runtime_error);
}
