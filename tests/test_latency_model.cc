/**
 * @file
 * Unit tests for the analytical latency models (Eqns. 1-3): functional
 * forms, fitting recovery, budget inversion and validation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "perfmodel/latency_model.hh"
#include "perfmodel/paper_reference.hh"

namespace er = edgereason;
using namespace er::perf;

TEST(PrefillLatencyModel, PaddingAndEvaluation)
{
    PrefillLatencyModel m;
    m.a = 1e-6;
    m.b = 1e-4;
    m.c = 0.1;
    EXPECT_EQ(m.padded(1), 128);
    EXPECT_EQ(m.padded(128), 128);
    EXPECT_EQ(m.padded(129), 256);
    // All lengths in one tile evaluate identically.
    EXPECT_DOUBLE_EQ(m(1), m(128));
    EXPECT_GT(m(129), m(128));
    EXPECT_DOUBLE_EQ(m(128), 1e-6 * 128 * 128 + 1e-4 * 128 + 0.1);
}

TEST(DecodeLatencyModel, ClosedFormMatchesStepSum)
{
    DecodeLatencyModel m;
    m.m = 1.13e-6;
    m.n = 0.187;
    const er::Tokens I = 512;
    const er::Tokens O = 300;
    double stepwise = 0.0;
    for (er::Tokens i = 0; i < O; ++i)
        stepwise += m.tbt(I + i);
    EXPECT_NEAR(m(I, O), stepwise, 1e-9);
}

TEST(DecodeLatencyModel, ZeroOutputIsFree)
{
    DecodeLatencyModel m;
    m.n = 0.1;
    EXPECT_DOUBLE_EQ(m(512, 0), 0.0);
}

TEST(DecodeLatencyModel, RemainingMatchesStepSumFromAnyContext)
{
    DecodeLatencyModel m;
    m.m = 1.13e-6;
    m.n = 0.187;
    // remaining(I, O) from the prompt boundary is the full prediction.
    EXPECT_NEAR(m.remaining(512, 300), m(512, 300), 1e-12);
    EXPECT_DOUBLE_EQ(m.remaining(512, 0), 0.0);
    // Mid-flight: the TBT sum over the positions still to be decoded.
    const er::Tokens ctx = 700; // 512 prompt + 188 already generated
    const er::Tokens left = 112;
    double stepwise = 0.0;
    for (er::Tokens i = 0; i < left; ++i)
        stepwise += m.tbt(ctx + i);
    EXPECT_NEAR(m.remaining(ctx, left), stepwise, 1e-9);
    // Splitting at any point conserves the total.
    EXPECT_NEAR(m.remaining(512, 188) + m.remaining(700, 112),
                m(512, 300), 1e-9);
}

TEST(LatencyModel, BudgetInversionIsExactBoundary)
{
    LatencyModel lm;
    lm.prefill = {1.56e-7, 2.31e-6, 0.046, 128};
    lm.decode = {1e-7, 0.024};
    const er::Tokens max = lm.maxOutputTokens(170, 5.0);
    EXPECT_GT(max, 0);
    EXPECT_LE(lm.total(170, max), 5.0);
    EXPECT_GT(lm.total(170, max + 1), 5.0);
}

TEST(LatencyModel, ImpossibleBudgetReturnsZero)
{
    LatencyModel lm;
    lm.prefill = {0.0, 0.0, 10.0, 128}; // 10 s fixed prefill
    lm.decode = {0.0, 0.1};
    EXPECT_EQ(lm.maxOutputTokens(128, 5.0), 0);
}

TEST(FitPrefill, RecoversSyntheticCoefficients)
{
    PrefillLatencyModel truth;
    truth.a = 6.65e-7;
    truth.b = 2.9e-4;
    truth.c = 0.104;
    std::vector<PrefillSample> samples;
    for (er::Tokens i = 64; i <= 4096; i += 64)
        samples.push_back({i, truth(i)});
    const auto fit = fitPrefill(samples);
    EXPECT_NEAR(fit.a, truth.a, 0.02 * truth.a);
    EXPECT_NEAR(fit.b, truth.b, 0.05 * truth.b);
    EXPECT_NEAR(fit.c, truth.c, 0.05 * truth.c);
    EXPECT_LT(validatePrefill(fit, samples), 0.5);
}

TEST(FitPrefill, IgnoresOffGridSamples)
{
    PrefillLatencyModel truth;
    truth.a = 1e-7;
    truth.b = 1e-4;
    truth.c = 0.05;
    std::vector<PrefillSample> samples;
    for (er::Tokens i = 64; i <= 2048; i += 64)
        samples.push_back({i, truth(i)});
    // Poison off-grid points; the fit must not move.
    samples.push_back({100, 99.0});
    samples.push_back({333, 99.0});
    const auto fit = fitPrefill(samples);
    EXPECT_NEAR(fit.a, truth.a, 0.02 * truth.a);
}

TEST(FitDecode, RecoversSyntheticCoefficients)
{
    DecodeLatencyModel truth;
    truth.m = 6.92e-7;
    truth.n = 0.10;
    er::Rng rng(5);
    std::vector<DecodeSample> samples;
    for (int i = 0; i < 100; ++i) {
        const er::Tokens in =
            static_cast<er::Tokens>(rng.uniform(32, 4096));
        const er::Tokens out =
            static_cast<er::Tokens>(rng.uniform(32, 2048));
        samples.push_back({in, out, truth(in, out)});
    }
    const auto fit = fitDecode(samples);
    EXPECT_NEAR(fit.n, truth.n, 0.02 * truth.n);
    EXPECT_NEAR(fit.m, truth.m, 0.15 * truth.m);
    EXPECT_LT(validateDecode(fit, samples), 0.5);
}

TEST(PaperReference, TableIvAndVArePresent)
{
    using er::model::ModelId;
    const auto p8 = paper::prefillLatency(ModelId::Dsr1Llama8B);
    ASSERT_TRUE(p8.has_value());
    EXPECT_DOUBLE_EQ(p8->a, 6.65e-7);
    const auto d14 = paper::decodeLatency(ModelId::Dsr1Qwen14B);
    ASSERT_TRUE(d14.has_value());
    EXPECT_DOUBLE_EQ(d14->n, 0.187);
    EXPECT_FALSE(paper::prefillLatency(ModelId::Gemma7BIt).has_value());
    const auto mape = paper::latencyMape(ModelId::Dsr1Qwen1_5B);
    ASSERT_TRUE(mape.has_value());
    EXPECT_DOUBLE_EQ(mape->prefill, 9.80);
}

TEST(PaperReference, PredictionsMatchPaperExamples)
{
    // Section IV-A: a full 14B model predicts ~196 ms TBT and Table X
    // implies ~259 s for 1318 tokens.
    using er::model::ModelId;
    LatencyModel lm;
    lm.prefill = *paper::prefillLatency(ModelId::Dsr1Qwen14B);
    lm.decode = *paper::decodeLatency(ModelId::Dsr1Qwen14B);
    const double total = lm.total(170, 1318);
    EXPECT_NEAR(total, 259.0, 20.0);
}
