/**
 * @file
 * Integration tests for the core layer: registry caching, the strategy
 * evaluator's metric plumbing, Pareto frontiers and the deployment
 * planner.
 */

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "core/edge_reasoning.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::core;
using er::acc::Dataset;
using er::model::ModelId;
using er::strategy::InferenceStrategy;
using er::strategy::TokenPolicy;

namespace {

/** Shared facade: characterization is expensive enough to share. */
EdgeReasoning &
facade()
{
    static EdgeReasoning er;
    return er;
}

InferenceStrategy
strat(ModelId id, TokenPolicy pol, int par = 1, bool quant = false)
{
    InferenceStrategy s;
    s.model = id;
    s.quantized = quant;
    s.policy = pol;
    s.parallel = par;
    return s;
}

} // namespace

TEST(Registry, CachesEntriesPerModelAndPrecision)
{
    auto &reg = facade().registry();
    const auto &a = reg.entry(ModelId::Dsr1Qwen1_5B, false);
    const auto &b = reg.entry(ModelId::Dsr1Qwen1_5B, false);
    EXPECT_EQ(&a, &b);
    const auto &q = reg.entry(ModelId::Dsr1Qwen1_5B, true);
    EXPECT_NE(&a, &q);
    EXPECT_NE(a.spec.weightDtype, q.spec.weightDtype);
}

TEST(Evaluator, TableXRowReproduction)
{
    // DSR1-Llama-8B Base: 61.7%, 811 toks, 87.2 s (Table X).  The
    // latency tolerance reflects our slightly faster calibrated TBT.
    const auto rep = facade().evaluate(
        strat(ModelId::Dsr1Llama8B, TokenPolicy::base()),
        Dataset::MmluRedux, 2000);
    EXPECT_NEAR(rep.accuracyPct, 61.7, 2.0);
    EXPECT_NEAR(rep.avgTokens, 811.1, 35.0);
    EXPECT_NEAR(rep.avgLatency, 87.2, 12.0);
    EXPECT_GT(rep.avgEnergy, 500.0);
    EXPECT_EQ(rep.questions, 2000u);
}

TEST(Evaluator, ReasoningVsNonReasoningTradeoffs)
{
    // Section V-C: DSR1-Llama-8B Base is ~5.7 pp more accurate than
    // Llama3.1-8B-it but ~13x slower.
    const auto reason = facade().evaluate(
        strat(ModelId::Dsr1Llama8B, TokenPolicy::base()),
        Dataset::MmluRedux, 1500);
    const auto direct = facade().evaluate(
        strat(ModelId::Llama31_8BIt, TokenPolicy::base()),
        Dataset::MmluRedux, 1500);
    EXPECT_NEAR(reason.accuracyPct - direct.accuracyPct, 3.4, 2.5);
    EXPECT_GT(reason.avgLatency / direct.avgLatency, 9.0);
    EXPECT_LT(reason.avgLatency / direct.avgLatency, 17.0);
}

TEST(Evaluator, QuantizationImprovesLatencyWithSmallAccuracyLoss)
{
    const auto fp16 = facade().evaluate(
        strat(ModelId::Dsr1Llama8B, TokenPolicy::base()),
        Dataset::MmluRedux, 1500);
    const auto w4 = facade().evaluate(
        strat(ModelId::Dsr1Llama8B, TokenPolicy::base(), 1, true),
        Dataset::MmluRedux, 1500);
    EXPECT_LT(w4.accuracyPct, fp16.accuracyPct);
    EXPECT_GT(fp16.accuracyPct - w4.accuracyPct, 1.5);
    // Fig. 14: ~2-5x latency improvement (shorter outputs + faster
    // decode).
    EXPECT_GT(fp16.avgLatency / w4.avgLatency, 2.0);
    EXPECT_LT(fp16.avgLatency / w4.avgLatency, 8.0);
}

TEST(Evaluator, ParallelismCostsEnergyNotMuchLatency)
{
    const auto sf1 = facade().evaluate(
        strat(ModelId::Dsr1Qwen14B, TokenPolicy::hard(128), 1),
        Dataset::MmluRedux, 1000);
    const auto sf4 = facade().evaluate(
        strat(ModelId::Dsr1Qwen14B, TokenPolicy::hard(128), 4),
        Dataset::MmluRedux, 1000);
    EXPECT_GT(sf4.accuracyPct, sf1.accuracyPct);
    // Latency grows sublinearly (batch padding).
    EXPECT_LT(sf4.avgLatency / sf1.avgLatency, 2.2);
    EXPECT_GT(sf4.avgEnergy, sf1.avgEnergy);
}

TEST(Evaluator, BatchDecodeModelIsConsistent)
{
    auto &ev = facade().evaluator();
    const auto m1 = ev.decodeModelAtBatch(ModelId::Dsr1Qwen14B, false,
                                          1);
    const auto m32 = ev.decodeModelAtBatch(ModelId::Dsr1Qwen14B, false,
                                           32);
    EXPECT_GT(m32.n, m1.n);
    EXPECT_GT(m32.m, m1.m); // KV reads scale with batch
    // Against the engine's own step latency.
    auto &eng = facade().registry().engineFor(ModelId::Dsr1Qwen14B,
                                              false);
    EXPECT_NEAR(m1.tbt(1024), eng.decodeStepLatency(1024), 2e-3);
}

TEST(Pareto, FrontierIsMonotone)
{
    std::vector<StrategyReport> reports;
    for (auto id : {ModelId::Dsr1Qwen1_5B, ModelId::Llama31_8BIt,
                    ModelId::Dsr1Qwen14B}) {
        reports.push_back(facade().evaluate(
            strat(id, TokenPolicy::base()), Dataset::MmluRedux, 800));
    }
    reports.push_back(facade().evaluate(
        strat(ModelId::Dsr1Qwen14B, TokenPolicy::hard(128)),
        Dataset::MmluRedux, 800));
    const auto frontier = paretoFrontier(reports,
                                         FrontierAxis::Latency);
    ASSERT_GE(frontier.size(), 2u);
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GE(frontier[i].avgLatency, frontier[i - 1].avgLatency);
        EXPECT_GT(frontier[i].accuracyPct, frontier[i - 1].accuracyPct);
    }
}

TEST(Pareto, RegimesMergeConsecutiveWinners)
{
    std::vector<StrategyReport> reports;
    for (auto id : {ModelId::Qwen25_1_5BIt, ModelId::Llama31_8BIt,
                    ModelId::Dsr1Qwen14B}) {
        reports.push_back(facade().evaluate(
            strat(id, TokenPolicy::base()), Dataset::MmluRedux, 800));
    }
    const auto regimes = budgetRegimes(
        reports, {1, 2, 5, 10, 20, 50, 100, 200, 400},
        FrontierAxis::Latency);
    ASSERT_GE(regimes.size(), 2u);
    // Higher-budget regimes have at least the accuracy of lower ones.
    for (std::size_t i = 1; i < regimes.size(); ++i) {
        EXPECT_GT(regimes[i].best.accuracyPct,
                  regimes[i - 1].best.accuracyPct);
    }
}

TEST(Planner, MaxTokensForBudgetInvertsLatency)
{
    auto &planner = facade().planner();
    const er::Tokens t5 = planner.maxTokensForBudget(
        ModelId::Dsr1Qwen14B, false, 170, 5.0);
    const er::Tokens t30 = planner.maxTokensForBudget(
        ModelId::Dsr1Qwen14B, false, 170, 30.0);
    EXPECT_GT(t30, t5);
    // ~190 ms TBT -> a 30 s budget buys roughly 150 tokens.
    EXPECT_NEAR(static_cast<double>(t30), 150.0, 25.0);
}

TEST(Planner, TightBudgetPicksSmallFastConfig)
{
    PlanRequest req;
    req.dataset = Dataset::MmluRedux;
    req.latencyBudget = 2.0;
    req.sampleQuestions = 300;
    req.maxParallel = 4;
    const auto plan = facade().plan(req);
    ASSERT_TRUE(plan.has_value());
    EXPECT_LE(plan->predicted.avgLatency, 2.0);
    // Only 1.5B-class models can answer within 2 s (Takeaway #4).
    const auto spec = er::model::spec(plan->strategy.model);
    EXPECT_LT(spec.paramCount(), 3e9);
}

TEST(Planner, LooseBudgetPicksLargeReasoningModel)
{
    PlanRequest req;
    req.dataset = Dataset::MmluRedux;
    req.latencyBudget = 300.0;
    req.sampleQuestions = 300;
    req.maxParallel = 1;
    const auto plan = facade().plan(req);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->strategy.model, ModelId::Dsr1Qwen14B);
    EXPECT_GT(plan->predicted.accuracyPct, 75.0);
}

TEST(Planner, AccuracyMonotoneInBudget)
{
    double prev = 0.0;
    for (double budget : {1.0, 5.0, 30.0, 120.0}) {
        PlanRequest req;
        req.latencyBudget = budget;
        req.sampleQuestions = 250;
        req.maxParallel = 4;
        const auto plan = facade().plan(req);
        ASSERT_TRUE(plan.has_value()) << "budget " << budget;
        EXPECT_GE(plan->predicted.accuracyPct, prev - 1.5)
            << "budget " << budget;
        prev = plan->predicted.accuracyPct;
    }
}

TEST(Planner, EnergyBudgetConstrainsChoice)
{
    PlanRequest req;
    req.dataset = Dataset::MmluRedux;
    req.latencyBudget = 120.0;
    req.sampleQuestions = 250;
    req.maxParallel = 4;
    const auto unconstrained = facade().plan(req);
    ASSERT_TRUE(unconstrained.has_value());

    req.energyBudgetJ = 40.0; // a stingy per-question battery budget
    const auto frugal = facade().plan(req);
    ASSERT_TRUE(frugal.has_value());
    EXPECT_LE(frugal->predicted.avgEnergy, 40.0);
    // The frugal choice cannot out-score the unconstrained one.
    EXPECT_LE(frugal->predicted.accuracyPct,
              unconstrained->predicted.accuracyPct + 1.0);
    // And the unconstrained choice must actually exceed the cap
    // (otherwise the test is vacuous).
    EXPECT_GT(unconstrained->predicted.avgEnergy, 40.0);
}

TEST(Planner, ImpossibleBudgetReturnsNothing)
{
    PlanRequest req;
    req.latencyBudget = 0.01; // below any model's prefill time
    req.sampleQuestions = 100;
    EXPECT_FALSE(facade().plan(req).has_value());
}

TEST(Facade, HardwareSummaryAndCharacterizationAccess)
{
    EXPECT_NE(facade().hardwareSummary().find("2048"),
              std::string::npos);
    const auto &c = facade().characterization(ModelId::Dsr1Qwen1_5B);
    EXPECT_GT(c.latency.decode.n, 0.02);
}

TEST(Evaluator, BitIdenticalAcrossThreadCounts)
{
    // The determinism contract: per-question RNG streams plus the
    // serial index-order reduction make every report field bit-exact
    // regardless of how many workers ran the sweep.
    auto run = [](unsigned threads) {
        er::ThreadPool::setGlobalThreads(threads);
        StrategyEvaluator ev(facade().registry());
        return ev.evaluate(
            strat(ModelId::Dsr1Llama8B, TokenPolicy::hard(256), 4),
            Dataset::MmluRedux, 600);
    };
    const auto base = run(1);
    for (unsigned threads : {2u, 8u}) {
        const auto rep = run(threads);
        EXPECT_EQ(rep.questions, base.questions) << threads;
        EXPECT_EQ(rep.accuracyPct, base.accuracyPct) << threads;
        EXPECT_EQ(rep.avgTokens, base.avgTokens) << threads;
        EXPECT_EQ(rep.avgSumTokens, base.avgSumTokens) << threads;
        EXPECT_EQ(rep.avgLatency, base.avgLatency) << threads;
        EXPECT_EQ(rep.avgEnergy, base.avgEnergy) << threads;
        EXPECT_EQ(rep.cost.totalPerMTok(), base.cost.totalPerMTok())
            << threads;
    }
    er::ThreadPool::setGlobalThreads(0);
}

TEST(Pareto, ParallelSweepMatchesDirectEvaluation)
{
    std::vector<InferenceStrategy> grid = {
        strat(ModelId::Dsr1Qwen1_5B, TokenPolicy::base()),
        strat(ModelId::Llama31_8BIt, TokenPolicy::base()),
        strat(ModelId::Dsr1Qwen14B, TokenPolicy::hard(128), 4),
    };
    er::ThreadPool::setGlobalThreads(4);
    const auto reports = sweepStrategies(facade().evaluator(), grid,
                                         Dataset::MmluRedux, 400);
    er::ThreadPool::setGlobalThreads(0);
    ASSERT_EQ(reports.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto direct = facade().evaluate(grid[i],
                                              Dataset::MmluRedux, 400);
        EXPECT_EQ(reports[i].strat.model, grid[i].model) << i;
        EXPECT_EQ(reports[i].accuracyPct, direct.accuracyPct) << i;
        EXPECT_EQ(reports[i].avgLatency, direct.avgLatency) << i;
        EXPECT_EQ(reports[i].avgEnergy, direct.avgEnergy) << i;
    }
}
