/**
 * @file
 * Unit tests for the hardware substrate: Orin spec, roofline execution,
 * power model, CPU backend and the SoC container.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/cpu.hh"
#include "hw/power.hh"
#include "hw/roofline.hh"
#include "hw/soc.hh"

namespace er = edgereason;
using namespace er::hw;

TEST(GpuSpec, TableOneNumbers)
{
    const GpuSpec s;
    EXPECT_EQ(s.cudaCores, 2048);
    EXPECT_EQ(s.tensorCores, 64);
    EXPECT_EQ(s.dlaCores, 2);
    EXPECT_DOUBLE_EQ(s.peakFp32Flops, 5.3e12);
    EXPECT_DOUBLE_EQ(s.memBandwidth, 204.8e9);
    EXPECT_EQ(s.memCapacity, 64LL * 1024 * 1024 * 1024);
    // Section VI: FLOPs-to-bytes balance in the hundreds for the
    // dense fp16 path.
    EXPECT_NEAR(s.machineBalanceFp16(), 335.7, 1.0);
}

TEST(GpuSpec, W4FallsBackToInt8)
{
    const GpuSpec s;
    EXPECT_DOUBLE_EQ(s.peakTensorFlops(er::DType::W4A16),
                     s.peakTensorFlops(er::DType::INT8));
}

TEST(PowerModes, ScaleAndCapOrdering)
{
    EXPECT_LT(powerModeScale(PowerMode::W15),
              powerModeScale(PowerMode::W30));
    EXPECT_LT(powerModeScale(PowerMode::W30),
              powerModeScale(PowerMode::W50));
    EXPECT_DOUBLE_EQ(powerModeScale(PowerMode::MaxN), 1.0);
    EXPECT_DOUBLE_EQ(powerModeCap(PowerMode::MaxN), 60.0);
    EXPECT_DOUBLE_EQ(powerModeCap(PowerMode::W15), 15.0);
}

namespace {

KernelDesc
streamKernel(double bytes)
{
    KernelDesc k;
    k.name = "stream";
    k.cls = KernelClass::GemvBandwidth;
    k.weightBytes = bytes;
    return k;
}

} // namespace

TEST(Roofline, BandwidthBoundKernelTime)
{
    RooflineGpu gpu(GpuSpec{}, GpuEfficiency{});
    const auto cost = gpu.execute(streamKernel(16e9));
    // 16 GB at 80% of 204.8 GB/s plus launch overhead.
    EXPECT_NEAR(cost.seconds, 16e9 / (0.8 * 204.8e9) + 12e-6, 1e-4);
    EXPECT_FALSE(cost.computeBound);
    EXPECT_GT(cost.bwUtil, 0.7);
}

TEST(Roofline, ComputeBoundKernel)
{
    RooflineGpu gpu(GpuSpec{}, GpuEfficiency{});
    KernelDesc k;
    k.name = "gemm";
    k.cls = KernelClass::GemmTensorCore;
    k.flops = 1e13;
    k.weightBytes = 1e6;
    const auto cost = gpu.execute(k);
    EXPECT_TRUE(cost.computeBound);
    EXPECT_NEAR(cost.seconds, 1e13 / (0.8 * 68.75e12) + 12e-6, 1e-4);
}

TEST(Roofline, PowerModeSlowsKernels)
{
    RooflineGpu maxn(GpuSpec{}, GpuEfficiency{}, PowerMode::MaxN);
    RooflineGpu w15(GpuSpec{}, GpuEfficiency{}, PowerMode::W15);
    const auto k = streamKernel(8e9);
    EXPECT_GT(w15.execute(k).seconds, maxn.execute(k).seconds * 2.0);
}

TEST(Roofline, BatchDerateMonotone)
{
    RooflineGpu gpu(GpuSpec{}, GpuEfficiency{});
    auto k = streamKernel(8e9);
    double prev = 0.0;
    for (int b : {1, 2, 8, 64}) {
        k.batch = b;
        const double t = gpu.execute(k).seconds;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(Roofline, RejectsNegativeWork)
{
    RooflineGpu gpu(GpuSpec{}, GpuEfficiency{});
    KernelDesc k;
    k.flops = -1.0;
    EXPECT_THROW(gpu.execute(k), std::logic_error);
}

TEST(PowerModel, PrefillConstantHead)
{
    PowerProfile p;
    p.prefillBreak = 800;
    p.prefillConst = 12.0;
    p.prefillLogAlpha = 5.52;
    p.prefillLogBeta = -24.9;
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.prefill(p, 100), 12.0);
    EXPECT_DOUBLE_EQ(pm.prefill(p, 800), 12.0);
    EXPECT_GT(pm.prefill(p, 4096), 12.0);
}

TEST(PowerModel, DecodeFloorAndLogTail)
{
    PowerProfile p;
    p.decodeFloor = 5.9;
    p.decodeLogAlpha = 2.2;
    p.decodeLogBeta = 10.3;
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.decode(p, 32), 5.9);
    EXPECT_GT(pm.decode(p, 128), pm.decode(p, 32));
    EXPECT_GT(pm.decode(p, 1024), pm.decode(p, 128));
}

TEST(PowerModel, BatchTermAndEnvelopeCap)
{
    PowerProfile p;
    p.decodeLogAlpha = 2.26;
    p.decodeLogBeta = 12.0;
    p.batchLogCoef = 2.9;
    PowerModel pm(PowerMode::MaxN);
    const double p1 = pm.decode(p, 128, 1);
    const double p32 = pm.decode(p, 128, 32);
    EXPECT_NEAR(p32 - p1, 2.9 * std::log(32.0), 1e-9);
    // A 15 W envelope clips everything.
    PowerModel low(PowerMode::W15);
    EXPECT_LE(low.decode(p, 2048, 64), 15.0);
}

TEST(PowerModel, DvfsScalesDynamicPowerDown)
{
    PowerProfile p;
    p.idle = 3.0;
    p.decodeLogAlpha = 2.2;
    p.decodeLogBeta = 14.8;
    PowerModel maxn(PowerMode::MaxN);
    PowerModel w30(PowerMode::W30);
    const double p_maxn = maxn.decode(p, 512);
    const double p_w30 = w30.decode(p, 512);
    EXPECT_LT(p_w30, p_maxn);
    EXPECT_GT(p_w30, p.idle); // never below idle
    // Dynamic part shrinks by scale^1.5.
    EXPECT_NEAR(p_w30 - p.idle,
                (p_maxn - p.idle) * std::pow(0.47, 1.5), 1e-9);
}

TEST(PowerModel, QuantizedLadder)
{
    PowerProfile p;
    p.decodeLogAlpha = 2.2;
    p.decodeLogBeta = 10.3;
    PowerModel pm(PowerMode::MaxN, /*quantize_states=*/true);
    const double w = pm.decode(p, 512);
    EXPECT_NEAR(std::fmod(w, PowerModel::stateGranularity), 0.0, 1e-9);
}

TEST(CpuDevice, MuchSlowerThanGpu)
{
    CpuDevice cpu{CpuSpec{}, CpuEfficiency{}};
    RooflineGpu gpu(GpuSpec{}, GpuEfficiency{});
    KernelDesc k;
    k.cls = KernelClass::GemmTensorCore;
    k.flops = 1e12;
    const double t_cpu = cpu.execute(k).seconds;
    const double t_gpu = gpu.execute(k).seconds;
    EXPECT_GT(t_cpu / t_gpu, 100.0); // Table XVI: 100-200x
}

TEST(DlaDevice, ComputeBoundGemmUsesInt8Peak)
{
    DlaDevice dla(GpuSpec{}, DlaEfficiency{});
    KernelDesc k;
    k.cls = KernelClass::GemmTensorCore;
    k.compute = er::DType::INT8;
    k.flops = 1e12;
    k.weightBytes = 1e6;
    const auto cost = dla.execute(k);
    EXPECT_TRUE(cost.computeBound);
    EXPECT_NEAR(cost.seconds, 1e12 / (0.55 * 52.5e12) + 60e-6, 1e-4);
}

TEST(DlaDevice, BandwidthShareIsNarrowerThanGpu)
{
    DlaDevice dla(GpuSpec{}, DlaEfficiency{});
    RooflineGpu gpu(GpuSpec{}, GpuEfficiency{});
    KernelDesc k;
    k.cls = KernelClass::GemvBandwidth;
    k.weightBytes = 4e9;
    EXPECT_GT(dla.execute(k).seconds, 1.5 * gpu.execute(k).seconds);
}

TEST(JetsonOrin, UsableMemoryReservesRuntime)
{
    JetsonOrin soc;
    EXPECT_LT(soc.usableMemory(), soc.gpu().spec().memCapacity);
    EXPECT_GT(soc.usableMemory(), 50LL * 1024 * 1024 * 1024);
}

TEST(JetsonOrin, SpecTableMentionsKeyNumbers)
{
    JetsonOrin soc;
    const std::string t = soc.specTable();
    EXPECT_NE(t.find("2048"), std::string::npos);
    EXPECT_NE(t.find("64GB"), std::string::npos);
    EXPECT_NE(t.find("204.8"), std::string::npos);
}

TEST(JetsonOrin, ExecutesOnBothBackends)
{
    JetsonOrin soc;
    std::vector<KernelDesc> ks = {streamKernel(1e9)};
    EXPECT_GT(soc.execute(Backend::Gpu, ks).seconds, 0.0);
    EXPECT_GT(soc.execute(Backend::Cpu, ks).seconds,
              soc.execute(Backend::Gpu, ks).seconds);
}
