/**
 * @file
 * End-to-end tests of the Section-IV characterization pipeline: the
 * sweep-fit-validate loop must recover coefficients compatible with
 * Tables IV-VI and VIII on the simulator.
 */

#include <gtest/gtest.h>

#include "model/calibration.hh"
#include "model/zoo.hh"
#include "perfmodel/characterize.hh"
#include "perfmodel/paper_reference.hh"

namespace er = edgereason;
using namespace er::perf;
using er::model::ModelId;

namespace {

er::engine::InferenceEngine
makeEngine(ModelId id)
{
    return er::engine::InferenceEngine(er::model::spec(id),
                                       er::model::calibration(id));
}

CharacterizationResult
characterizeModel(ModelId id)
{
    auto eng = makeEngine(id);
    return characterize(eng);
}

} // namespace

TEST(Characterize, PrefillQuadraticCoefficientNearTableIV)
{
    // The quadratic term is physical (attention on the FP32 path) and
    // should land within ~15% of the paper's fit.
    const struct { ModelId id; double a; } rows[] = {
        {ModelId::Dsr1Qwen1_5B, 1.56e-7},
        {ModelId::Dsr1Llama8B, 6.65e-7},
        {ModelId::Dsr1Qwen14B, 1.23e-6},
    };
    for (const auto &r : rows) {
        const auto c = characterizeModel(r.id);
        EXPECT_NEAR(c.latency.prefill.a, r.a, 0.15 * r.a)
            << er::model::modelName(r.id);
    }
}

TEST(Characterize, DecodeConstantTermNearPaperTbt)
{
    // n ~ TBT: 0.024-0.026 / ~0.10 / ~0.19 s (Section IV-A text and
    // Tables X/XIX; Table V's 8B n is a known typo).
    EXPECT_NEAR(characterizeModel(ModelId::Dsr1Qwen1_5B).latency.decode.n,
                0.025, 0.004);
    EXPECT_NEAR(characterizeModel(ModelId::Dsr1Llama8B).latency.decode.n,
                0.10, 0.012);
    EXPECT_NEAR(characterizeModel(ModelId::Dsr1Qwen14B).latency.decode.n,
                0.19, 0.015);
}

TEST(Characterize, MapeWithinTableVIBands)
{
    for (ModelId id : er::model::dsr1Family()) {
        const auto c = characterizeModel(id);
        const auto target = paper::latencyMape(id);
        ASSERT_TRUE(target.has_value());
        // Prefill MAPE within 2x of the paper's band, decode and
        // total within a small absolute margin.
        EXPECT_LT(c.prefillMapePct, 2.0 * target->prefill);
        EXPECT_GT(c.prefillMapePct, 0.25 * target->prefill);
        EXPECT_LT(c.decodeMapePct, 1.5);
        EXPECT_LT(c.totalMapePct, 1.5);
    }
}

TEST(Characterize, EnergyMapeWithinTableVIIIBands)
{
    for (ModelId id : er::model::dsr1Family()) {
        const auto c = characterizeModel(id);
        EXPECT_LT(c.decodeEnergyMapePct, 10.0);
        EXPECT_LT(c.totalEnergyMapePct, 10.0);
        EXPECT_GT(c.decodeEnergyMapePct, 2.0); // noise is being modeled
    }
}

TEST(Characterize, PrefillPowerShapeMatchesEqn4)
{
    // 1.5B: constant; 8B/14B: breakpoint + log tail (Table XX).
    const auto small = characterizeModel(ModelId::Dsr1Qwen1_5B);
    EXPECT_EQ(small.prefillPower.v, 0);
    EXPECT_NEAR(small.prefillPower.u, 5.64, 0.4);

    const auto large = characterizeModel(ModelId::Dsr1Qwen14B);
    EXPECT_GT(large.prefillPower.v, 0);
    EXPECT_GT(large.prefillPower.w, 0.0);
}

TEST(Characterize, DecodePowerGrowsLogarithmically)
{
    const auto c = characterizeModel(ModelId::Dsr1Llama8B);
    EXPECT_GT(c.decodePower.y, 0.0);
    EXPECT_GT(c.decodePower(1024), c.decodePower(128));
}

TEST(Characterize, SweepsProduceExpectedShapes)
{
    auto eng = makeEngine(ModelId::Dsr1Llama8B);
    SweepConfig cfg;
    cfg.repeats = 3;
    const auto pf = sweepPrefill(eng, cfg);
    EXPECT_EQ(pf.latency.size(), 64u); // 64..4096 step 64
    // Latency grows with input length overall.
    EXPECT_GT(pf.latency.back().latency, pf.latency.front().latency);
    // Energy per token is U-shaped: the minimum is interior.
    double min_e = 1e30;
    std::size_t min_idx = 0;
    for (std::size_t i = 0; i < pf.energyPerToken.size(); ++i) {
        if (pf.energyPerToken[i].energyPerToken < min_e) {
            min_e = pf.energyPerToken[i].energyPerToken;
            min_idx = i;
        }
    }
    EXPECT_GT(min_idx, 0u);
    EXPECT_LT(min_idx, pf.energyPerToken.size() - 1);

    const auto dc = sweepDecode(eng, cfg);
    EXPECT_FALSE(dc.latency.empty());
    EXPECT_GT(dc.power.back().power, dc.power.front().power);
}

TEST(Characterize, TbtVsInputIsNearFlat)
{
    // Fig. 3b: TBT rises only ~3% from I=1 to 4k.
    auto eng = makeEngine(ModelId::Dsr1Llama8B);
    const auto trace = tbtVsInputLength(eng, {1, 1024, 2048, 4096});
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_LT(trace.back().second / trace.front().second, 1.06);
}

TEST(Characterize, WorkloadSamplerIsDeterministic)
{
    er::Rng a(42, "wl");
    er::Rng b(42, "wl");
    const auto wa = sampleWorkload(a, 50, 170, 512);
    const auto wb = sampleWorkload(b, 50, 170, 512);
    ASSERT_EQ(wa.questions.size(), 50u);
    EXPECT_EQ(wa.questions, wb.questions);
}
