/**
 * @file
 * Tests for the layered serving stack: the request lifecycle state
 * machine, the pluggable admission schedulers (fcfs / edf / spjf),
 * chunked prefill, and — most importantly — bit-exactness of the
 * decomposed simulator against goldens recorded from the monolithic
 * pre-refactor run loop.
 *
 * The golden values were produced by the pre-decomposition
 * ServingSimulator with %.17g printing (which round-trips doubles
 * exactly), for three scenarios that jointly cover every code path:
 * plain completion, deadline timeout/shed, budget degradation, thermal
 * throttling, brownouts, and KV-shrink preemption with retry.  The
 * legacy configuration (--scheduler fcfs --prefill-chunk 0) must keep
 * reproducing them bit for bit: every comparison below is exact
 * (EXPECT_EQ on doubles), not approximate.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>

#include "engine/server.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::engine;
using er::Seconds;
using er::Tokens;
using er::model::ModelId;

namespace {

InferenceEngine
makeEngine(ModelId id = ModelId::DeepScaleR1_5B)
{
    EngineConfig cfg;
    cfg.measurementNoise = false;
    return InferenceEngine(er::model::spec(id),
                           er::model::calibration(id), cfg);
}

/** A latency model with plausible shape for SPJF ordering tests (only
 *  the relative order of predictions matters to the scheduler). */
er::perf::LatencyModel
toyModel()
{
    er::perf::LatencyModel m;
    m.prefill.a = 0.0;
    m.prefill.b = 1e-4;
    m.prefill.c = 0.01;
    m.decode.m = 1e-6;
    m.decode.n = 0.02;
    return m;
}

TrackedRequest
tracked(Seconds arrival, Tokens in, Tokens out, int priority = 0,
        Seconds deadline = 0.0, Seconds not_before = 0.0)
{
    TrackedRequest t;
    t.req.arrival = arrival;
    t.req.inputTokens = in;
    t.req.outputTokens = out;
    t.req.priority = priority;
    t.req.deadline = deadline;
    t.notBefore = not_before;
    return t;
}

// ---------------------------------------------------------------------
// Golden bit-exactness (legacy fcfs / chunk-0 path).
// ---------------------------------------------------------------------

struct GoldenReq
{
    int outcome;
    double queueDelay;
    double serviceTime;
    double finish;
    long long generated;
    int preemptions;
    int degraded;
};

struct GoldenAgg
{
    std::size_t completed, timedOut, shed, retried, degraded;
    unsigned long long preemptions;
    double makespan, throughputQps, avgBatch, meanLatency, p50, p95,
        totalEnergy, energyPerQuery, generatedTokens, utilization,
        goodputQps, deadlineHitRate, throttleResidency;
};

void
expectGolden(const std::vector<ServedRequest> &served,
             const ServingReport &rep, const GoldenAgg &agg,
             const GoldenReq *reqs, std::size_t n)
{
    EXPECT_EQ(rep.completed, agg.completed);
    EXPECT_EQ(rep.timedOut, agg.timedOut);
    EXPECT_EQ(rep.shed, agg.shed);
    EXPECT_EQ(rep.retriedCompleted, agg.retried);
    EXPECT_EQ(rep.degradedCompleted, agg.degraded);
    EXPECT_EQ(rep.preemptions, agg.preemptions);
    // Exact comparisons: the layered stack must execute the legacy
    // arithmetic in the legacy order, down to the last ulp.
    EXPECT_EQ(rep.makespan, agg.makespan);
    EXPECT_EQ(rep.throughputQps, agg.throughputQps);
    EXPECT_EQ(rep.avgBatch, agg.avgBatch);
    EXPECT_EQ(rep.meanLatency, agg.meanLatency);
    EXPECT_EQ(rep.p50Latency, agg.p50);
    EXPECT_EQ(rep.p95Latency, agg.p95);
    EXPECT_EQ(rep.totalEnergy, agg.totalEnergy);
    EXPECT_EQ(rep.energyPerQuery, agg.energyPerQuery);
    EXPECT_EQ(rep.generatedTokens, agg.generatedTokens);
    EXPECT_EQ(rep.utilization, agg.utilization);
    EXPECT_EQ(rep.goodputQps, agg.goodputQps);
    EXPECT_EQ(rep.deadlineHitRate, agg.deadlineHitRate);
    EXPECT_EQ(rep.throttleResidency, agg.throttleResidency);
    EXPECT_EQ(rep.schedulerPolicy, SchedulerPolicy::Fcfs);
    ASSERT_EQ(served.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        SCOPED_TRACE("record " + std::to_string(i));
        EXPECT_EQ(static_cast<int>(served[i].outcome),
                  reqs[i].outcome);
        EXPECT_EQ(served[i].queueDelay, reqs[i].queueDelay);
        EXPECT_EQ(served[i].serviceTime, reqs[i].serviceTime);
        EXPECT_EQ(served[i].finish, reqs[i].finish);
        EXPECT_EQ(served[i].generated, reqs[i].generated);
        EXPECT_EQ(served[i].preemptions, reqs[i].preemptions);
        EXPECT_EQ(static_cast<int>(served[i].degraded),
                  reqs[i].degraded);
    }
}

const GoldenReq kZeroFaultReqs[] = {
    {0, 0, 8.6784096352567826, 11.494589550402365, 332, 0, 0},
    {0, 0.010658389064799323, 8.6556205100229988, 14.27380129919103, 327, 0, 0},
    {0, 0.011087969858266433, 6.8195149249113243, 19.692106180247386, 251, 0, 0},
    {0, 0.022931942526671634, 5.0703732920204807, 22.594131751874091, 178, 0, 0},
    {0, 0.0067930304318295498, 7.4598801303398687, 23.945667291997687, 266, 0, 0},
    {0, 0.0061596127333274353, 8.1647742892588724, 26.384714999161847, 303, 0, 0},
    {0, 0.019838830233151583, 7.8244420100277701, 35.265538776842178, 279, 0, 0},
    {0, 0.018716678964061373, 5.8626427134258776, 36.898764754743702, 204, 0, 0},
    {0, 0.003407097640248935, 10.617838567302996, 36.925305583862944, 383, 0, 0},
    {0, 0.004342209549239584, 11.610068947627735, 42.724617907088401, 409, 0, 0},
    {0, 0.010972406146400715, 5.2568775912954777, 43.264870789853312, 180, 0, 0},
    {0, 0.025947268069174356, 5.2538664004510096, 45.640820008902146, 182, 0, 0},
    {0, 0.012263399464480074, 6.8944854295497464, 45.905969218454366, 240, 0, 0},
    {0, 0.018695899849412001, 6.4887289970420241, 47.579748461902597, 237, 0, 0},
    {0, 0, 5.0427094420698069, 53.117054313693536, 200, 0, 0},
    {0, 0.010998429305367097, 5.1336252524980708, 57.953743516398134, 196, 0, 0},
    {0, 0.00086913602110172405, 5.2465873421264675, 61.50968959979901, 179, 0, 0},
    {0, 0.0069920234576841267, 7.166877117024903, 64.299398672352766, 246, 0, 0},
    {0, 0.0054962867502723611, 4.5340667983102634, 64.327039727221305, 156, 0, 0},
    {0, 0.002721930368565495, 6.6409844204495059, 65.36075893017869, 229, 0, 0},
    {0, 0.04288479510562837, 11.710540663006945, 70.507513124811467, 415, 0, 0},
    {0, 0.0083498370842960412, 3.5580615908127697, 72.71139030413643, 110, 0, 0},
    {0, 0.0090032027506765644, 5.1062434708123021, 74.373893625355265, 162, 0, 0},
    {0, 0.0059959279687262779, 7.8348856368298243, 75.559583283612994, 254, 0, 0},
    {0, 0.025484214759160295, 3.1693863416020918, 75.618917364464039, 101, 0, 0},
    {0, 0.017076305214047238, 5.9872045766558699, 75.880843228741028, 193, 0, 0},
    {0, 0.0069753084666075438, 2.3906675362863439, 76.644743942549937, 76, 0, 0},
    {0, 0.0090061108614207797, 9.1775150713808813, 78.808665498657277, 299, 0, 0},
    {0, 0.0029933413426732614, 8.638784739304981, 79.320484019171531, 285, 0, 0},
    {0, 0.022853119944031164, 4.9689757279147244, 83.349562155752736, 169, 0, 0},
    {0, 0.018731472935087368, 8.2038601455872566, 87.744820741833706, 278, 0, 0},
    {0, 0.010991030696786197, 14.707690777046068, 89.704592251337303, 493, 0, 0},
    {0, 0.0071003809847240973, 3.3010650703380975, 91.162584699270241, 107, 0, 0},
    {0, 0.0082180007147201195, 6.5692448158794576, 91.51354353615821, 215, 0, 0},
    {0, 0.020577333468168035, 16.156774679140071, 92.634739515147729, 542, 0, 0},
    {0, 0.022608836283396272, 6.9112156001460363, 93.802848446912719, 228, 0, 0},
    {0, 0.018906279221440059, 5.6708740218722085, 94.356076957954372, 191, 0, 0},
    {0, 0.026479266167129367, 12.450795280025631, 95.110373364015445, 417, 0, 0},
    {0, 0.017307147112703092, 4.6733903908610586, 97.014784203267922, 167, 0, 0},
    {0, 0.025530681479850159, 5.7815931458400627, 100.4558491552571, 226, 0, 0},
};

const GoldenReq kFaultedReqs[] = {
    {0, 0.026980848650165368, 7.7591283521969379, 8.3317724068977981, 251, 0, 0},
    {0, 0, 13.271457494661865, 13.769487884513556, 377, 0, 0},
    {2, 8.3613087178207746, 0, 13.769487884513556, 0, 0, 0},
    {0, 0.0070393413114406833, 11.800298208742131, 14.867783278743019, 326, 0, 0},
    {0, 0.0069647956993823534, 12.96686031475436, 16.213036501306931, 364, 0, 0},
    {0, 0.0013896392046279793, 14.601780175841791, 17.444878386146232, 378, 0, 0},
    {0, 0.015334717721288582, 17.006125903774869, 18.448242183723671, 456, 0, 0},
    {0, 0.02021394405596677, 16.957369873387599, 19.52292832704104, 450, 0, 0},
    {2, 11.160488896012836, 0, 19.52292832704104, 0, 0, 0},
    {0, 3.011284997481761, 16.568975775569328, 24.900748182467126, 387, 0, 0},
    {2, 15.402521774509729, 0, 24.900748182467126, 0, 0, 0},
    {2, 15.22561274756919, 0, 24.900748182467126, 0, 0, 0},
    {2, 15.03374393453573, 0, 24.900748182467126, 0, 0, 0},
    {0, 11.656311533581153, 8.2585918457440499, 26.706834029467721, 208, 0, 0},
    {0, 10.699927420629033, 10.476508537871187, 29.999436864912226, 280, 0, 0},
    {0, 0.016214039306373884, 25.484178138146785, 30.323356614423886, 669, 0, 0},
    {2, 19.617844626486477, 0, 30.323356614423886, 0, 0, 0},
    {0, 8.9584961332999669, 15.576044390080032, 30.443827668823051, 400, 0, 0},
    {2, 18.983819635524103, 0, 30.443827668823051, 0, 0, 0},
    {2, 18.448742178660716, 0, 30.443827668823051, 0, 0, 0},
    {0, 9.8776073080807336, 15.604003511999945, 31.817040013306876, 401, 0, 0},
    {2, 18.914565543039764, 0, 31.817040013306876, 0, 0, 0},
    {2, 18.700917968976313, 0, 31.817040013306876, 0, 0, 0},
    {2, 18.370381936196068, 0, 31.817040013306876, 0, 0, 0},
    {2, 18.15965263280124, 0, 31.817040013306876, 0, 0, 0},
    {0, 8.1497477854826919, 18.343285545697764, 32.11277343021132, 485, 0, 0},
    {2, 16.41824229197163, 0, 32.11277343021132, 0, 0, 0},
    {0, 10.838290411633039, 16.941858746003913, 34.386737132150145, 477, 0, 0},
    {2, 16.657519997217193, 0, 34.479130449122458, 0, 0, 0},
    {0, 16.450610922710588, 10.725109665822785, 37.431943695290506, 332, 0, 0},
    {2, 18.399696268910262, 0, 37.431943695290506, 0, 0, 0},
    {1, 14.747082887601405, 15.313097357849045, 40.213845540316171, 429, 0, 0},
    {2, 18.353220885985802, 0, 40.213845540316171, 0, 0, 0},
    {2, 17.676110751254935, 0, 40.213845540316171, 0, 0, 0},
    {1, 19.494339926666257, 10.566063521940407, 40.565500386852634, 269, 0, 0},
    {2, 17.760513706524161, 0, 40.565500386852634, 0, 0, 0},
    {1, 18.953564346281382, 11.102038015019552, 41.425394629443439, 268, 0, 0},
    {1, 18.056382470712496, 12.003560292976598, 42.447387961799649, 275, 0, 0},
    {0, 16.213462979203271, 12.594933511830234, 44.707706942041554, 246, 0, 0},
    {2, 18.624780650911415, 0, 44.707706942041554, 0, 0, 0},
    {2, 18.404126974109111, 0, 44.707706942041554, 0, 0, 0},
    {1, 16.286357136131041, 13.750136158630308, 45.567176171937184, 261, 0, 0},
    {1, 16.222574354061223, 13.824996302621862, 48.30412675174432, 208, 0, 0},
    {1, 17.278430127943345, 12.75714850258256, 50.189092197873066, 134, 0, 0},
    {1, 17.504299485035233, 12.571112694789505, 52.784958235105677, 122, 0, 1},
    {0, 16.63839543669344, 12.947029693467059, 53.512530080319692, 128, 0, 1},
    {0, 16.344984776402779, 12.709137125112214, 54.134531754555653, 128, 0, 1},
    {0, 17.335007253970467, 12.463402609984357, 54.910790571784005, 128, 0, 1},
    {0, 15.955334121744908, 12.023312665999143, 56.731019608040697, 128, 0, 1},
    {0, 15.538598164443407, 11.701331585514971, 57.268507757452156, 128, 0, 1},
};

const GoldenReq kKvPressureReqs[] = {
    {0, 0.069357699375231757, 71.009700877730751, 71.195936392824464, 1907, 0, 0},
    {0, 0.082684646091910174, 73.735219532032716, 75.29296957237851, 1981, 0, 0},
    {0, 0.070040661379509345, 79.609671547338721, 79.882465224681937, 2107, 0, 0},
    {0, 0.020357082566742069, 106.34350101749529, 109.40555402622276, 2764, 0, 0},
    {2, 112.90107330831178, 0, 120.54901527855732, 0, 4, 0},
    {2, 113.21183052186439, 0, 120.54901527855732, 0, 4, 0},
    {2, 113.42498104011418, 0, 120.54901527855732, 0, 4, 0},
    {2, 113.54040398565354, 0, 120.54901527855732, 0, 4, 0},
    {2, 113.91552149274261, 0, 120.54901527855732, 0, 4, 0},
    {2, 113.99899096857138, 0, 120.54901527855732, 0, 4, 0},
    {2, 114.68737691482717, 0, 120.54901527855732, 0, 4, 0},
    {2, 114.68737848074684, 0, 120.54901527855732, 0, 4, 0},
    {2, 114.83663920021111, 0, 120.54901527855732, 0, 4, 0},
    {2, 114.94957118230235, 0, 120.54901527855732, 0, 4, 0},
    {2, 115.09759350644221, 0, 120.54901527855732, 0, 4, 0},
    {2, 116.5625420829398, 0, 120.54901527855732, 0, 4, 0},
    {2, 116.57246709802374, 0, 120.54901527855732, 0, 4, 0},
    {0, 0.0026539512948439148, 129.37846620494267, 130.02217604506785, 3330, 0, 0},
    {0, 0.05477795932156565, 134.41806613593039, 134.60430165102409, 3453, 0, 0},
    {0, 0.013831320727169638, 134.32098771911853, 135.1132670961947, 3453, 0, 0},
    {0, 74.123748852216835, 57.883470212312858, 135.91143520668209, 1406, 2, 0},
    {0, 0.070716056144615624, 133.58833560040708, 136.73257794014802, 3434, 0, 0},
    {0, 0.04563461144257086, 149.61637499893899, 150.5696732055074, 3875, 0, 0},
    {0, 0.018461272149977948, 148.92875393036832, 151.13560491461413, 3856, 0, 0},
    {0, 0.017299735730816668, 152.0425783578977, 152.83485773497387, 3943, 0, 0},
    {0, 0.0068949703415110142, 160.4994940573539, 160.60907585284042, 4195, 0, 0},
    {0, 71.466575040471994, 89.999145790491028, 165.29211536286954, 2332, 2, 0},
    {0, 67.468668886280568, 94.903477278020787, 166.09941367084525, 2464, 2, 0},
    {0, 0, 175.34006013280157, 175.34158600314538, 4701, 0, 0},
    {0, 0.022870865633886073, 233.18521722047197, 234.6521921106231, 6980, 0, 0},
};

TEST(SchedulerGolden, ZeroFaultRunIsBitExact)
{
    auto eng = makeEngine();
    // The goldens pin the legacy token-stepped loop (DESIGN.md §10);
    // macro-stepping equivalence is covered by test_macrostep.
    ServerConfig cfg;
    cfg.exactSteps = true;
    ServingSimulator srv(eng, cfg);
    er::Rng rng(42, "golden");
    const auto trace =
        ServingSimulator::poissonTrace(rng, 40, 0.5, 120, 256);
    const auto rep = srv.run(trace);
    const GoldenAgg agg = {
        40, 0, 0, 0, 0, 0,
        97.639669240111516, 0.40966955655732118, 2.8525950857401705,
        7.1479277056337507, 6.6105845837061246, 12.589344909270258,
        1998.426194565887, 49.960654864147173, 9905,
        0.99493447270387059, 0.40966955655732118, 1, 0};
    expectGolden(srv.served(), rep, agg, kZeroFaultReqs,
                 std::size(kZeroFaultReqs));
}

TEST(SchedulerGolden, FaultedRunIsBitExact)
{
    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.maxBatch = 8;
    cfg.degrade.mode = DegradeMode::Budget;
    cfg.degrade.budget = er::strategy::TokenPolicy::hard(128);
    cfg.exactSteps = true; // goldens pin the legacy loop
    ServingSimulator srv(eng, cfg);
    er::Rng rng(42, "golden-faults");
    auto trace = ServingSimulator::poissonTrace(rng, 50, 2.0, 120, 512);
    for (auto &r : trace)
        r.deadline = 30.0;
    FaultConfig fc;
    fc.seed = 0xFA17;
    fc.horizon = trace.back().arrival + 600.0;
    fc.thermal = true;
    fc.thermalSpec.rThermal = 2.5;
    fc.thermalSpec.cThermal = 20.0;
    fc.thermalSpec.ambientC = 55.0;
    fc.thermalSpec.initialC = 55.0;
    fc.brownoutsPerHour = 300.0;
    fc.kvShrinksPerHour = 200.0;
    fc.kvShrinkFraction = 0.6;
    fc.kvShrinkDuration = 15.0;
    const FaultPlan plan(fc);
    const auto rep = srv.run(trace, plan);
    const GoldenAgg agg = {
        22, 8, 20, 0, 5, 0,
        56.770477367600463, 0.38752536564992218, 6.8074558400958605,
        22.024678192886814, 25.008075671730339, 29.558859968728221,
        953.23677318200635, 43.328944235545741, 9093,
        0.92266618826861602, 0.38752536564992218, 0.44,
        0.36812222103875081};
    expectGolden(srv.served(), rep, agg, kFaultedReqs,
                 std::size(kFaultedReqs));
}

TEST(SchedulerGolden, KvPressureRunIsBitExact)
{
    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.maxBatch = 32;
    cfg.exactSteps = true; // goldens pin the legacy loop
    ServingSimulator srv(eng, cfg);
    er::Rng rng(7, "golden-kv");
    const auto trace =
        ServingSimulator::poissonTrace(rng, 30, 4.0, 120, 3000);
    FaultConfig fc;
    fc.seed = 0xFA17;
    fc.horizon = trace.back().arrival + 600.0;
    fc.kvShrinksPerHour = 240.0;
    fc.kvShrinkFraction = 0.97;
    fc.kvShrinkDuration = 30.0;
    const FaultPlan plan(fc);
    const auto rep = srv.run(trace, plan);
    const GoldenAgg agg = {
        17, 0, 13, 3, 0, 58,
        234.65066624027929, 0.072448121594473613, 10.194439826713657,
        137.55041730734254, 134.47284409525196, 186.91366572346237,
        8041.2397132399055, 473.01410077881798, 64131, 1,
        0.072448121594473613, 1, 0};
    expectGolden(srv.served(), rep, agg, kKvPressureReqs,
                 std::size(kKvPressureReqs));
}

TEST(SchedulerGolden, EdfMatchesFcfsOnDeadlineFreeTrace)
{
    // With no deadlines every absolute deadline is +inf; EDF's tie
    // break is the fcfs order, so the whole run must be identical.
    auto eng = makeEngine();
    ServingSimulator fcfs(eng);
    er::Rng rng_a(42, "golden");
    const auto trace_a =
        ServingSimulator::poissonTrace(rng_a, 40, 0.5, 120, 256);
    const auto rep_a = fcfs.run(trace_a);

    ServerConfig cfg;
    cfg.scheduler = SchedulerPolicy::Edf;
    ServingSimulator edf(eng, cfg);
    er::Rng rng_b(42, "golden");
    const auto trace_b =
        ServingSimulator::poissonTrace(rng_b, 40, 0.5, 120, 256);
    const auto rep_b = edf.run(trace_b);

    EXPECT_EQ(rep_b.schedulerPolicy, SchedulerPolicy::Edf);
    EXPECT_EQ(rep_a.makespan, rep_b.makespan);
    EXPECT_EQ(rep_a.meanLatency, rep_b.meanLatency);
    EXPECT_EQ(rep_a.totalEnergy, rep_b.totalEnergy);
    ASSERT_EQ(fcfs.served().size(), edf.served().size());
    for (std::size_t i = 0; i < fcfs.served().size(); ++i) {
        EXPECT_EQ(fcfs.served()[i].finish, edf.served()[i].finish);
        EXPECT_EQ(fcfs.served()[i].generated,
                  edf.served()[i].generated);
    }
}

// ---------------------------------------------------------------------
// Request lifecycle state machine.
// ---------------------------------------------------------------------

TEST(RequestState, TransitionTable)
{
    using S = RequestState;
    // Legal edges (the lifecycle diagram).
    EXPECT_TRUE(requestTransitionAllowed(S::Queued, S::Prefilling));
    EXPECT_TRUE(requestTransitionAllowed(S::Queued, S::Done));
    EXPECT_TRUE(requestTransitionAllowed(S::Prefilling, S::Decoding));
    EXPECT_TRUE(requestTransitionAllowed(S::Prefilling, S::Preempted));
    EXPECT_TRUE(requestTransitionAllowed(S::Prefilling, S::Done));
    EXPECT_TRUE(requestTransitionAllowed(S::Decoding, S::Preempted));
    EXPECT_TRUE(requestTransitionAllowed(S::Decoding, S::Done));
    EXPECT_TRUE(requestTransitionAllowed(S::Preempted, S::Prefilling));
    EXPECT_TRUE(requestTransitionAllowed(S::Preempted, S::Done));
    // Illegal edges.
    EXPECT_FALSE(requestTransitionAllowed(S::Queued, S::Decoding));
    EXPECT_FALSE(requestTransitionAllowed(S::Queued, S::Preempted));
    EXPECT_FALSE(requestTransitionAllowed(S::Decoding, S::Prefilling));
    EXPECT_FALSE(requestTransitionAllowed(S::Decoding, S::Queued));
    EXPECT_FALSE(requestTransitionAllowed(S::Preempted, S::Decoding));
    EXPECT_FALSE(requestTransitionAllowed(S::Done, S::Queued));
    EXPECT_FALSE(requestTransitionAllowed(S::Done, S::Prefilling));
    // Self-loops are not edges.
    EXPECT_FALSE(requestTransitionAllowed(S::Queued, S::Queued));
    EXPECT_FALSE(requestTransitionAllowed(S::Done, S::Done));
}

TEST(RequestState, StateNames)
{
    EXPECT_STREQ(requestStateName(RequestState::Queued), "queued");
    EXPECT_STREQ(requestStateName(RequestState::Prefilling),
                 "prefilling");
    EXPECT_STREQ(requestStateName(RequestState::Decoding), "decoding");
    EXPECT_STREQ(requestStateName(RequestState::Preempted),
                 "preempted");
    EXPECT_STREQ(requestStateName(RequestState::Done), "done");
}

TEST(RequestState, ResetForAdmissionInitializesInFlightFields)
{
    auto t = tracked(1.0, 256, 512);
    t.resetForAdmission(3.5, 128, true, 7);
    EXPECT_EQ(t.state, RequestState::Prefilling);
    EXPECT_EQ(t.effOut, 128);
    EXPECT_EQ(t.prefillStart, 3.5);
    EXPECT_EQ(t.prefillDone, 0);
    EXPECT_EQ(t.generated, 0);
    EXPECT_TRUE(t.degraded);
    EXPECT_EQ(t.seq, 7u);

    // Recompute-on-resume: a preempted request re-admits from scratch.
    t.transitionTo(RequestState::Preempted);
    t.generated = 99; // stale progress, must be discarded
    t.resetForAdmission(9.0, 512, false, 8);
    EXPECT_EQ(t.state, RequestState::Prefilling);
    EXPECT_EQ(t.generated, 0);
    EXPECT_EQ(t.prefillDone, 0);
    EXPECT_FALSE(t.degraded);
}

TEST(RequestState, DeadlineHelpers)
{
    auto none = tracked(2.0, 64, 64);
    EXPECT_FALSE(none.hasDeadline());
    EXPECT_EQ(none.absoluteDeadline(),
              std::numeric_limits<Seconds>::infinity());
    EXPECT_FALSE(none.deadlineExpired(1e12));

    auto tight = tracked(2.0, 64, 64, 0, 10.0);
    EXPECT_TRUE(tight.hasDeadline());
    EXPECT_EQ(tight.absoluteDeadline(), 12.0);
    EXPECT_FALSE(tight.deadlineExpired(12.0));
    // Within the shared slack: still on time.
    EXPECT_FALSE(tight.deadlineExpired(12.0 + 0.5 * kDeadlineSlack));
    EXPECT_TRUE(tight.deadlineExpired(12.0 + 2.0 * kDeadlineSlack));
}

TEST(RequestState, DeadlineMetUsesSharedSlack)
{
    // Satellite fix: the served-record check and the abort check share
    // kDeadlineSlack, so a request aborted as late can never be
    // re-counted as having met its deadline.
    ServedRequest s;
    s.request.arrival = 1.0;
    s.request.deadline = 10.0;
    s.outcome = RequestOutcome::Completed;
    s.finish = 11.0 + 0.5 * kDeadlineSlack;
    EXPECT_TRUE(s.deadlineMet());
    s.finish = 11.0 + 2.0 * kDeadlineSlack;
    EXPECT_FALSE(s.deadlineMet());
    s.outcome = RequestOutcome::TimedOut;
    s.finish = 5.0;
    EXPECT_FALSE(s.deadlineMet());
}

// ---------------------------------------------------------------------
// Scheduler unit behaviour (pickNext).
// ---------------------------------------------------------------------

TEST(SchedulerPick, PolicyNamesRoundTrip)
{
    for (auto p : {SchedulerPolicy::Fcfs, SchedulerPolicy::Edf,
                   SchedulerPolicy::Spjf}) {
        const auto back = schedulerPolicyFromName(
            schedulerPolicyName(p));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, p);
    }
    EXPECT_FALSE(schedulerPolicyFromName("sjf").has_value());
    EXPECT_FALSE(schedulerPolicyFromName("").has_value());
}

/** Columnar scheduler-test fixture: a pool plus a queue over it. */
struct PickQ
{
    RequestBatch pool;
    IdQueue q;
    void push(const TrackedRequest &t)
    {
        const ReqId id = pool.adopt(t);
        q.push(id, t.req.priority, t.req.arrival, t.notBefore > 0.0);
    }
};

TEST(SchedulerPick, FcfsPriorityThenArrival)
{
    FcfsScheduler s;
    PickQ f;
    f.push(tracked(5.0, 64, 64, 0));
    f.push(tracked(1.0, 64, 64, 0));
    f.push(tracked(9.0, 64, 64, 2)); // higher class, later arrival
    EXPECT_EQ(s.pickNext(f.pool, f.q, 100.0), 2u);
    f.q.eraseAt(2);
    EXPECT_EQ(s.pickNext(f.pool, f.q, 100.0), 1u); // earliest in class
}

TEST(SchedulerPick, FcfsOrderHintFastPathMatchesScan)
{
    // A uniform-priority, FIFO-by-arrival, gate-free queue takes the
    // order-hint fast path (front pick, no scan); the hints must drop
    // back to the scan the moment any assumption breaks.
    FcfsScheduler s;
    PickQ f;
    f.push(tracked(1.0, 64, 64, 0));
    f.push(tracked(2.0, 64, 64, 0));
    EXPECT_TRUE(f.q.fcfsFrontIsPick());
    EXPECT_EQ(s.pickNext(f.pool, f.q, 100.0), 0u);
    f.push(tracked(3.0, 64, 64, 1)); // second priority class
    EXPECT_FALSE(f.q.fcfsFrontIsPick());
    EXPECT_EQ(s.pickNext(f.pool, f.q, 100.0), 2u);
    // Draining the queue resets the hints for its next life.
    f.q.eraseAt(2);
    f.q.eraseAt(0);
    f.q.eraseAt(0);
    EXPECT_TRUE(f.q.empty());
    f.push(tracked(9.0, 64, 64, 5));
    EXPECT_TRUE(f.q.fcfsFrontIsPick());
    EXPECT_EQ(s.pickNext(f.pool, f.q, 100.0), 0u);
}

TEST(SchedulerPick, BackoffGateSkipsIneligibleEntries)
{
    FcfsScheduler s;
    PickQ f;
    f.push(tracked(0.0, 64, 64, 0, 0.0, /*not_before=*/10.0));
    f.push(tracked(1.0, 64, 64, 0));
    EXPECT_EQ(s.pickNext(f.pool, f.q, 5.0), 1u);  // 0 backing off
    EXPECT_EQ(s.pickNext(f.pool, f.q, 10.0), 0u); // gate open: earlier
    f.q.eraseAt(1);
    EXPECT_EQ(s.pickNext(f.pool, f.q, 5.0), f.q.size()); // none open
}

TEST(SchedulerPick, EdfPrefersTighterAbsoluteDeadline)
{
    EdfScheduler s;
    PickQ f;
    f.push(tracked(0.0, 64, 64, 0, 50.0));  // absolute 50
    f.push(tracked(20.0, 64, 64, 0, 10.0)); // absolute 30
    f.push(tracked(1.0, 64, 64, 0));        // no deadline: +inf
    EXPECT_EQ(s.pickNext(f.pool, f.q, 25.0), 1u);
    // Deadline-free requests rank after every deadline-carrying one,
    // even though they arrived first.
    f.q.eraseAt(1);
    EXPECT_EQ(s.pickNext(f.pool, f.q, 25.0), 0u);
    // Equal deadlines fall back to the fcfs order.
    PickQ tie;
    tie.push(tracked(4.0, 64, 64, 0, 6.0)); // absolute 10
    tie.push(tracked(2.0, 64, 64, 0, 8.0)); // absolute 10
    EXPECT_EQ(s.pickNext(tie.pool, tie.q, 5.0), 1u);
}

TEST(SchedulerPick, SpjfPrefersShortPredictedJobs)
{
    SpjfScheduler s(toyModel());
    PickQ f;
    f.push(tracked(0.0, 128, 2048, 0));
    f.push(tracked(1.0, 128, 64, 0)); // far shorter job
    EXPECT_EQ(s.pickNext(f.pool, f.q, 10.0), 1u);
    EXPECT_LT(s.predictedService(f.pool.materialize(f.q[1])),
              s.predictedService(f.pool.materialize(f.q[0])));
    // Priority classes dominate predicted length.
    f.push(tracked(2.0, 4096, 8192, 1));
    EXPECT_EQ(s.pickNext(f.pool, f.q, 10.0), 2u);
}

TEST(SchedulerPick, FactoryBuildsEachPolicy)
{
    EXPECT_EQ(makeScheduler(SchedulerPolicy::Fcfs)->policy(),
              SchedulerPolicy::Fcfs);
    EXPECT_EQ(makeScheduler(SchedulerPolicy::Edf)->policy(),
              SchedulerPolicy::Edf);
    const auto m = toyModel();
    const auto spjf = makeScheduler(SchedulerPolicy::Spjf, &m);
    EXPECT_EQ(spjf->policy(), SchedulerPolicy::Spjf);
    EXPECT_STREQ(spjf->name(), "spjf");
}

// ---------------------------------------------------------------------
// Policy end-to-end comparisons.
// ---------------------------------------------------------------------

TEST(SchedulerPolicyCompare, EdfBeatsFcfsOnDeadlineHitRate)
{
    // Over-subscribed burst where arrival order is anti-correlated
    // with urgency: loose-deadline requests arrive first, so fcfs
    // serves them first and the tight ones expire in the queue.  EDF
    // reorders by absolute deadline and saves most of the tight ones.
    std::vector<ServerRequest> trace;
    for (int i = 0; i < 10; ++i) {
        ServerRequest r;
        r.arrival = 0.01 * i;
        r.inputTokens = 128;
        r.outputTokens = 256;
        r.deadline = 400.0; // loose
        trace.push_back(r);
    }
    for (int i = 0; i < 10; ++i) {
        ServerRequest r;
        r.arrival = 0.1 + 0.01 * i;
        r.inputTokens = 128;
        r.outputTokens = 256;
        r.deadline = 40.0; // tight
        trace.push_back(r);
    }

    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.maxBatch = 2; // scarce capacity: ordering decides who makes it
    ServingSimulator fcfs(eng, cfg);
    const auto rep_fcfs = fcfs.run(trace);

    cfg.scheduler = SchedulerPolicy::Edf;
    ServingSimulator edf(eng, cfg);
    const auto rep_edf = edf.run(trace);

    EXPECT_GT(rep_edf.deadlineHitRate, rep_fcfs.deadlineHitRate);
    EXPECT_GE(rep_edf.goodputQps, rep_fcfs.goodputQps);
}

TEST(SchedulerPolicyCompare, SpjfBeatsFcfsOnMeanLatencyBimodal)
{
    // Bimodal output lengths with long jobs at the head of the queue:
    // fcfs convoys every short job behind them; SPJF drains the shorts
    // first, cutting the mean without an oracle (predictions come from
    // the fitted characterization of the same engine).
    std::vector<ServerRequest> trace;
    for (int i = 0; i < 4; ++i) {
        ServerRequest r;
        r.arrival = 0.01 * i;
        r.inputTokens = 128;
        r.outputTokens = 2048; // long
        trace.push_back(r);
    }
    for (int i = 0; i < 12; ++i) {
        ServerRequest r;
        r.arrival = 0.04 + 0.01 * i;
        r.inputTokens = 128;
        r.outputTokens = 64; // short
        trace.push_back(r);
    }

    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.maxBatch = 1; // pure convoy effect
    ServingSimulator fcfs(eng, cfg);
    const auto rep_fcfs = fcfs.run(trace);

    cfg.scheduler = SchedulerPolicy::Spjf;
    cfg.spjfModel = toyModel();
    ServingSimulator spjf(eng, cfg);
    const auto rep_spjf = spjf.run(trace);

    EXPECT_LT(rep_spjf.meanLatency, rep_fcfs.meanLatency);
    // Work conserved: both plans finish everything.
    EXPECT_EQ(rep_fcfs.completed, trace.size());
    EXPECT_EQ(rep_spjf.completed, trace.size());
    EXPECT_EQ(rep_fcfs.generatedTokens, rep_spjf.generatedTokens);
}

TEST(SchedulerPolicyCompare, SetSchedulerOverridesConfig)
{
    auto eng = makeEngine();
    ServingSimulator srv(eng);
    EXPECT_EQ(srv.scheduler().policy(), SchedulerPolicy::Fcfs);
    srv.setScheduler(std::make_unique<EdfScheduler>());
    EXPECT_EQ(srv.scheduler().policy(), SchedulerPolicy::Edf);
    const auto rep = srv.run({{0.0, 128, 64}});
    EXPECT_EQ(rep.schedulerPolicy, SchedulerPolicy::Edf);
    EXPECT_EQ(rep.completed, 1u);
}

// ---------------------------------------------------------------------
// Chunked prefill.
// ---------------------------------------------------------------------

TEST(ChunkedPrefill, ConservesWorkAndCompletes)
{
    auto eng = makeEngine();
    ServerConfig plain;
    ServingSimulator base(eng, plain);
    std::vector<ServerRequest> trace;
    for (int i = 0; i < 12; ++i)
        trace.push_back({0.5 * i, i % 3 == 0 ? Tokens(3000) : Tokens(96),
                         128});
    const auto rep_base = base.run(trace);

    ServerConfig chunked;
    chunked.prefillChunk = 256;
    ServingSimulator srv(eng, chunked);
    const auto rep = srv.run(trace);
    EXPECT_EQ(rep.completed, trace.size());
    EXPECT_EQ(rep.generatedTokens, rep_base.generatedTokens);
    // Chunking adds per-chunk overhead but must stay the same order of
    // magnitude (it only re-schedules the same prompt work).
    EXPECT_LT(rep.makespan, 1.5 * rep_base.makespan);
}

TEST(ChunkedPrefill, ImprovesTailLatencyUnderLongPromptInterference)
{
    // Interactive cohorts are mid-decode when a huge prompt lands.
    // Unchunked, its whole ~11 s prefill freezes every in-flight
    // decode, and those near-finished requests become the p95 tail;
    // with bounded chunks they keep stepping between chunks and finish
    // early.  (Chunking costs some extra total prefill work, so the
    // trace leaves idle slack to absorb it — chunked prefill trades
    // peak throughput for tail latency, not a free lunch.)
    std::vector<ServerRequest> trace;
    for (int i = 0; i < 10; ++i)
        trace.push_back({0.01 * i, 64, 24});
    trace.push_back({0.5, 8192, 8}); // huge prompt, cohort mid-decode
    for (int i = 0; i < 10; ++i)
        trace.push_back({30.0 + 0.01 * i, 64, 24});
    trace.push_back({30.5, 8192, 8}); // second interference window
    for (int i = 0; i < 20; ++i)
        trace.push_back({60.0 + 1.0 * i, 64, 24});

    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.maxBatch = 16;
    ServingSimulator plain(eng, cfg);
    const auto rep_plain = plain.run(trace);

    cfg.prefillChunk = 128;
    ServingSimulator chunked(eng, cfg);
    const auto rep_chunked = chunked.run(trace);

    EXPECT_EQ(rep_plain.completed, trace.size());
    EXPECT_EQ(rep_chunked.completed, trace.size());
    EXPECT_LT(rep_chunked.p95Latency, 0.5 * rep_plain.p95Latency);
    EXPECT_LT(rep_chunked.meanLatency, rep_plain.meanLatency);
}

TEST(ChunkedPrefill, WorksUnderFaultsWithPreemption)
{
    // Chunked prefill composes with the fault path: preempted work is
    // recomputed from the first chunk and accounting stays conserved.
    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.maxBatch = 16;
    cfg.prefillChunk = 128;
    ServingSimulator srv(eng, cfg);
    er::Rng rng(7, "golden-kv");
    const auto trace =
        ServingSimulator::poissonTrace(rng, 30, 4.0, 120, 3000);
    FaultConfig fc;
    fc.seed = 0xFA17;
    fc.horizon = trace.back().arrival + 600.0;
    fc.kvShrinksPerHour = 240.0;
    fc.kvShrinkFraction = 0.9;
    fc.kvShrinkDuration = 20.0;
    const auto rep = srv.run(trace, FaultPlan(fc));
    EXPECT_EQ(rep.completed + rep.timedOut + rep.shed, trace.size());
    EXPECT_EQ(srv.served().size(), trace.size());
    for (const auto &s : srv.served()) {
        EXPECT_GE(s.queueDelay, 0.0);
        EXPECT_GE(s.serviceTime, 0.0);
    }
}

// ---------------------------------------------------------------------
// New report fields.
// ---------------------------------------------------------------------

TEST(ServingReportFields, QueueStatsAndTailPercentiles)
{
    auto eng = makeEngine();
    ServerConfig cfg;
    cfg.maxBatch = 2;
    ServingSimulator srv(eng, cfg);
    std::vector<ServerRequest> trace;
    for (int i = 0; i < 24; ++i)
        trace.push_back({0.01 * i, 128, 192});
    const auto rep = srv.run(trace);
    EXPECT_EQ(rep.completed, trace.size());
    // Tail percentiles are ordered and the burst visibly queued.
    EXPECT_GE(rep.p95Latency, rep.p50Latency);
    EXPECT_GE(rep.p99Latency, rep.p95Latency);
    EXPECT_GE(rep.meanLatency, rep.meanQueueDelay);
    EXPECT_GT(rep.meanQueueDelay, 0.0);
    EXPECT_GE(rep.p99QueueDelay, rep.p95QueueDelay);
    EXPECT_GT(rep.peakQueueDepth, 8u); // 24 arrivals vs 2-wide service
}

} // namespace
