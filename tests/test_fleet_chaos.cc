/**
 * @file
 * Randomized fleet chaos sweep.  Each seed generates a distinct
 * fleet — random node count, heterogeneous power modes, random
 * crash/degrade schedules, random routing policy, hedging and
 * timeouts — and runs it with the paranoid fleet auditor checking the
 * conservation invariant after every event.  The run itself fatals if
 * any request is lost; each seed is then *killed* mid-run at a
 * seed-dependent event (checkpointing enabled) and resumed, and the
 * resumed report must match the uninterrupted one byte for byte.  On
 * a gtest failure the per-node write-ahead journals are left under
 * ./fleet-chaos-artifacts/seed-<N>/ (the CI fleet-chaos job uploads
 * that directory) so the failing fleet can be inspected offline:
 *
 *   edgereason replay fleet-chaos-artifacts/seed-<N>/node-0-inc0.bin --dump
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "engine/server.hh"
#include "fleet/fleet.hh"
#include "hw/gpu_spec.hh"
#include "model/model_id.hh"

namespace er = edgereason;
using namespace er::fleet;
using er::engine::ServingSimulator;

TEST(FleetChaos, RandomFleetsConserveEveryRequest)
{
    const std::filesystem::path artifacts = "fleet-chaos-artifacts";
    std::filesystem::remove_all(artifacts);

    const RouterPolicy policies[] = {
        RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
        RouterPolicy::DeadlineAware, RouterPolicy::CostAware};
    const er::hw::PowerMode modes[] = {
        er::hw::PowerMode::MaxN, er::hw::PowerMode::W50,
        er::hw::PowerMode::W30, er::hw::PowerMode::W15};

    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        SCOPED_TRACE("fleet chaos seed " + std::to_string(seed));
        er::Rng dice(seed, "fleet-chaos/dice");

        const int n = 2 + static_cast<int>(dice.uniform() * 4.0);
        FleetConfig fc;
        for (int i = 0; i < n; ++i) {
            NodeSpec s;
            s.model = er::model::ModelId::DeepScaleR1_5B;
            s.powerMode =
                modes[static_cast<int>(dice.uniform() * 4.0) % 4];
            fc.nodes.push_back(s);
        }
        fc.server.maxBatch = 4 + static_cast<int>(dice.uniform() * 8.0);
        fc.router = policies[seed % 4];
        fc.maxRetries = 2 + static_cast<int>(dice.uniform() * 3.0);
        fc.retryBackoff = 0.25;
        fc.hedgeFraction = seed % 2 ? 0.4 : 0.0;
        fc.requestTimeout = seed % 3 == 0 ? 20.0 : 0.0;
        fc.paranoid = true;
        fc.journalDir =
            (artifacts / ("seed-" + std::to_string(seed))).string();

        // Aggressive node trouble: expected several crashes and
        // degrade windows inside the active span of every run.
        fc.nodeFaults.seed = seed * 7919;
        fc.nodeFaults.horizon = 300.0;
        fc.nodeFaults.crashesPerHour = 120.0 + 240.0 * dice.uniform();
        fc.nodeFaults.meanRebootSeconds = 5.0 + 20.0 * dice.uniform();
        fc.nodeFaults.degradesPerHour = 60.0 * dice.uniform();
        fc.nodeFaults.meanDegradeSeconds = 15.0;

        er::Rng traceRng(seed, "fleet-chaos/trace");
        auto trace = ServingSimulator::poissonTrace(
            traceRng, 30, 0.8 + 1.2 * dice.uniform(), 96, 256);
        if (seed % 2) {
            for (auto &r : trace)
                r.deadline = 90.0;
        }

        // run() fatals on any conservation violation (a request that
        // never reaches a terminal state, a leg the bookkeeping
        // lost); the tallies must also reconcile exactly.
        FleetSimulator sim(fc);
        const auto rep = sim.run(trace);
        EXPECT_EQ(rep.served + rep.timedOut + rep.shed + rep.offloaded,
                  rep.arrivals);
        EXPECT_EQ(rep.arrivals, trace.size());
        // With failover + retry enabled and no cloud, every request
        // must end on an edge node or in a deliberate terminal state
        // — never vanish.  Crash-heavy fleets must actually exercise
        // the failover path.
        if (rep.nodes.size() > 1) {
            std::uint64_t crashes = 0;
            for (const auto &node : rep.nodes)
                crashes += node.crashes;
            EXPECT_GT(crashes, 0u);
        }

        // Kill/resume equality: the same randomized fleet, killed at
        // a seed-dependent event with checkpointing on, then resumed
        // from the latest checkpoint, must land on the exact report
        // of the uninterrupted run above — node crashes, hedges,
        // retries, energy, everything.
        const auto seed_dir =
            artifacts / ("seed-" + std::to_string(seed));
        FleetConfig kfc = fc;
        kfc.journalDir = (seed_dir / "killed").string();
        FleetDurabilityOptions dur;
        dur.checkpointDir = (seed_dir / "ckpt").string();
        dur.checkpointEvery = 5 + seed % 20;
        dur.crashAtEvent = 25 + static_cast<std::int64_t>(seed * 13 % 50);
        bool killed = false;
        try {
            FleetSimulator doomed(kfc);
            doomed.run(trace, dur);
        } catch (const FleetSimulatedCrash &) {
            killed = true;
        }
        EXPECT_TRUE(killed) << "kill point was never reached";
        dur.crashAtEvent = -1;
        dur.resume = true;
        FleetSimulator revived(kfc);
        EXPECT_EQ(formatFleetReport(revived.run(trace, dur)),
                  formatFleetReport(rep));
    }

    // A green sweep cleans up its journals; failures keep them for
    // the CI artifact upload.
    if (!::testing::Test::HasFailure())
        std::filesystem::remove_all(artifacts);
}
