/**
 * @file
 * Unit tests for the accuracy substrate: datasets, anchors, the IRT
 * scaling law and behavioural profiles.
 */

#include <gtest/gtest.h>

#include "accuracy/anchors.hh"
#include "accuracy/dataset.hh"
#include "accuracy/profile.hh"
#include "accuracy/scaling_law.hh"

namespace er = edgereason;
using namespace er::acc;
using er::model::ModelId;
using er::strategy::TokenPolicy;

TEST(Datasets, PropertiesMatchPaper)
{
    EXPECT_EQ(datasetInfo(Dataset::MmluRedux).questionCount, 3000u);
    EXPECT_EQ(datasetInfo(Dataset::MmluRedux).choices, 4);
    EXPECT_DOUBLE_EQ(datasetInfo(Dataset::MmluRedux).guessFloor, 0.25);
    EXPECT_GT(datasetInfo(Dataset::Mmlu).questionCount, 15000u);
    EXPECT_EQ(datasetInfo(Dataset::Aime2024).questionCount, 30u);
    EXPECT_EQ(datasetInfo(Dataset::Aime2024).choices, 0);
}

TEST(QuestionBank, DeterministicAndWellFormed)
{
    QuestionBank a(Dataset::MmluRedux, 7);
    QuestionBank b(Dataset::MmluRedux, 7);
    ASSERT_EQ(a.questions().size(), 3000u);
    for (std::size_t i = 0; i < 100; ++i) {
        const auto &qa = a.questions()[i];
        EXPECT_DOUBLE_EQ(qa.difficulty, b.questions()[i].difficulty);
        EXPECT_GE(qa.promptTokens, 16);
        EXPECT_GE(qa.correctChoice, 0);
        EXPECT_LT(qa.correctChoice, 4);
        EXPECT_NE(qa.trapChoice, qa.correctChoice);
    }
    EXPECT_EQ(a.subset(150).size(), 150u);
}

TEST(Anchors, PublishedRowsPresent)
{
    const auto a = anchors(ModelId::Dsr1Qwen14B, Dataset::MmluRedux,
                           false);
    ASSERT_EQ(a.size(), 6u); // Base, 2 soft, NR, 2 hard
    bool found_base = false;
    for (const auto &x : a) {
        if (x.policy == TokenPolicy::base()) {
            found_base = true;
            EXPECT_DOUBLE_EQ(x.accuracyPct, 80.6);
            EXPECT_DOUBLE_EQ(x.avgTokens, 1317.8);
        }
    }
    EXPECT_TRUE(found_base);
    // Quantized base rows exist.
    EXPECT_TRUE(hasAnchors(ModelId::Dsr1Llama8B, Dataset::MmluRedux,
                           true));
    // Natural-Plan covers reasoning + two direct models.
    EXPECT_TRUE(hasAnchors(ModelId::Qwen25_14BIt,
                           Dataset::NaturalPlanMeeting, false));
    EXPECT_FALSE(hasAnchors(ModelId::Gemma7BIt,
                            Dataset::NaturalPlanTrip, false));
}

TEST(ScalingLaw, PopulationAccuracyMonotoneAndBounded)
{
    double prev = 0.0;
    for (double a : {-10.0, -2.0, 0.0, 2.0, 10.0}) {
        const double acc = populationAccuracy(a, 0.25, 1.3);
        EXPECT_GT(acc, prev);
        EXPECT_GE(acc, 0.25);
        EXPECT_LE(acc, 1.0);
        prev = acc;
    }
    EXPECT_NEAR(populationAccuracy(-30.0, 0.25, 1.3), 0.25, 1e-6);
}

TEST(ScalingLaw, AbilityInversionRoundTrips)
{
    for (double target : {0.3, 0.45, 0.617, 0.806, 0.95}) {
        const double a = abilityForAccuracy(target, 0.25, 1.3);
        EXPECT_NEAR(populationAccuracy(a, 0.25, 1.3), target, 1e-6);
    }
    // At/below the guess floor -> hard negative ability.
    EXPECT_LT(abilityForAccuracy(0.25, 0.25, 1.3), -20.0);
}

TEST(ScalingLaw, CurveFitRecoversSaturatingShape)
{
    AbilityCurve truth{2.0, 3.0, 400.0};
    std::vector<std::pair<double, double>> pts;
    for (double t : {100.0, 200.0, 400.0, 800.0, 1600.0})
        pts.emplace_back(t, truth(t));
    const auto fit = fitAbilityCurve(pts);
    EXPECT_NEAR(fit(100.0), truth(100.0), 0.05);
    EXPECT_NEAR(fit(1600.0), truth(1600.0), 0.05);
    EXPECT_NEAR(fit.aInf, 2.0, 0.3);
}

TEST(ScalingLaw, NonMonotoneDataDegradesToConstant)
{
    // Decreasing anchors (the 1.5B pattern) must not produce a
    // negative-b curve.
    std::vector<std::pair<double, double>> pts = {
        {234.0, 0.5}, {740.0, 0.2}, {1474.0, -0.1}};
    const auto fit = fitAbilityCurve(pts);
    EXPECT_GE(fit.b, 0.0);
    EXPECT_GE(fit(2000.0), fit(10.0));
}

TEST(Profile, AnchorsResolveExactly)
{
    const ResponseProfile p(ModelId::Dsr1Qwen14B, Dataset::MmluRedux,
                            false);
    // Published rows reproduce exactly as expected accuracy.
    EXPECT_NEAR(p.expectedAccuracy(TokenPolicy::base()), 0.806, 1e-3);
    EXPECT_NEAR(p.expectedAccuracy(TokenPolicy::noReasoning()), 0.690,
                1e-3);
    EXPECT_NEAR(p.expectedAccuracy(TokenPolicy::hard(128)), 0.461,
                1e-3);
    EXPECT_NEAR(p.expectedAccuracy(TokenPolicy::soft(256)), 0.772,
                1e-3);
    EXPECT_NEAR(p.meanTokens(TokenPolicy::base()), 1317.8, 0.1);
    EXPECT_NEAR(p.meanTokens(TokenPolicy::hard(128)), 78.2, 0.1);
}

TEST(Profile, HardAnchorsCarryParseFailures)
{
    // Table XI's 15.9% at 128T is below the 25% guess floor; only a
    // parse-failure mass can explain it.
    const ResponseProfile p(ModelId::Dsr1Qwen1_5B, Dataset::MmluRedux,
                            false);
    const auto cb = p.resolve(TokenPolicy::hard(128));
    EXPECT_GT(cb.parseFail, 0.2);
    EXPECT_NEAR(p.expectedAccuracy(TokenPolicy::hard(128)), 0.159,
                1e-3);
}

TEST(Profile, InterpolatedBudgetsBehaveSensibly)
{
    const ResponseProfile p(ModelId::Dsr1Qwen14B, Dataset::MmluRedux,
                            false);
    // A 512-token hard budget sits between 256T and Base.
    const double acc512 = p.expectedAccuracy(TokenPolicy::hard(512));
    EXPECT_GT(acc512, p.expectedAccuracy(TokenPolicy::hard(256)));
    EXPECT_LT(acc512, p.expectedAccuracy(TokenPolicy::base()));
    // Mean tokens respect the cap.
    EXPECT_LE(p.meanTokens(TokenPolicy::hard(512)), 512.0);
    // Larger budgets shed the truncation penalty.
    EXPECT_LT(p.resolve(TokenPolicy::hard(1024)).parseFail,
              p.resolve(TokenPolicy::hard(128)).parseFail);
}

TEST(Profile, QuantizedProfileTracksQuantAnchors)
{
    const ResponseProfile p(ModelId::Dsr1Llama8B, Dataset::MmluRedux,
                            true);
    EXPECT_NEAR(p.expectedAccuracy(TokenPolicy::base()), 0.579, 1e-3);
    EXPECT_NEAR(p.meanTokens(TokenPolicy::base()), 549.1, 0.1);
}

TEST(Profile, QuantizedBudgetsBorrowFp16Structure)
{
    // MMLU-Redux quant anchors cover only Base; budgeted policies must
    // inherit the FP16 budget structure shifted by the quantization
    // delta (Table XII shows quant budget rows tracking FP16 ones).
    const ResponseProfile q(ModelId::Dsr1Qwen14B, Dataset::MmluRedux,
                            true);
    const ResponseProfile f(ModelId::Dsr1Qwen14B, Dataset::MmluRedux,
                            false);
    const double q128 = q.expectedAccuracy(TokenPolicy::hard(128));
    const double f128 = f.expectedAccuracy(TokenPolicy::hard(128));
    // Within a few points of the FP16 value, and far below Base.
    EXPECT_NEAR(q128, f128, 0.05);
    EXPECT_LT(q128, 0.6 * q.expectedAccuracy(TokenPolicy::base()));
    // Token means scale with the quant/fp16 base ratio and respect
    // the cap.
    EXPECT_LE(q.meanTokens(TokenPolicy::hard(128)), 128.0);
}

TEST(Profile, BudgetAwareCategoryHasHighCorrelation)
{
    const ResponseProfile l1(ModelId::L1Max, Dataset::MmluRedux, false);
    const ResponseProfile r(ModelId::Dsr1Llama8B, Dataset::MmluRedux,
                            false);
    EXPECT_GT(l1.sampleCorrelation(), r.sampleCorrelation());
    EXPECT_LT(l1.lengthCv(), r.lengthCv());
}

TEST(Profile, MissingCombinationIsFatal)
{
    EXPECT_THROW(ResponseProfile(ModelId::Gemma7BIt,
                                 Dataset::NaturalPlanTrip, false),
                 std::runtime_error);
}

TEST(Profile, NaturalPlanUsesFreeFormGrading)
{
    const ResponseProfile p(ModelId::Dsr1Qwen14B,
                            Dataset::NaturalPlanCalendar, false);
    EXPECT_DOUBLE_EQ(p.info().guessFloor, 0.0);
    EXPECT_NEAR(p.expectedAccuracy(TokenPolicy::base()), 0.117, 2e-3);
    EXPECT_NEAR(p.expectedAccuracy(TokenPolicy::hard(512)), 0.126,
                2e-3);
}
