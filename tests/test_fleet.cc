/**
 * @file
 * Fleet serving suite (DESIGN.md §12): node-scoped fault-schedule
 * determinism, router-policy golden reports (exact EXPECT_EQ on the
 * %.17g formatFleetReport string), thread-count bit-identity,
 * hedging cancel-on-first-win, failover conservation under a forced
 * node crash, graceful drain, per-try timeouts with retry, and the
 * cloud-offload tier.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "engine/server.hh"
#include "fleet/fleet.hh"
#include "fleet/node_faults.hh"
#include "hw/gpu_spec.hh"
#include "model/model_id.hh"

namespace er = edgereason;
using namespace er::fleet;
using er::engine::ServerRequest;
using er::engine::ServingSimulator;

namespace {

// --- Node-fault determinism (the node-scoped stream rule) ------------

NodeFaultConfig
faultyConfig()
{
    NodeFaultConfig cfg;
    cfg.seed = 0xBEEF;
    cfg.horizon = 3600.0;
    cfg.crashesPerHour = 60.0;
    cfg.meanRebootSeconds = 15.0;
    cfg.degradesPerHour = 45.0;
    cfg.meanDegradeSeconds = 30.0;
    cfg.behavioural.thermal = true;
    cfg.behavioural.brownoutsPerHour = 30.0;
    cfg.behavioural.kvShrinksPerHour = 30.0;
    cfg.behavioural.horizon = 3600.0;
    return cfg;
}

void
expectSameSchedule(const NodeFaultSchedule &a, const NodeFaultSchedule &b)
{
    ASSERT_EQ(a.crashes.size(), b.crashes.size());
    for (std::size_t k = 0; k < a.crashes.size(); ++k) {
        EXPECT_EQ(a.crashes[k].time, b.crashes[k].time);
        EXPECT_EQ(a.crashes[k].rebootAfter, b.crashes[k].rebootAfter);
    }
    ASSERT_EQ(a.degrades.size(), b.degrades.size());
    for (std::size_t k = 0; k < a.degrades.size(); ++k) {
        EXPECT_EQ(a.degrades[k].start, b.degrades[k].start);
        EXPECT_EQ(a.degrades[k].duration, b.degrades[k].duration);
    }
    const auto &ea = a.behavioural.events();
    const auto &eb = b.behavioural.events();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t k = 0; k < ea.size(); ++k) {
        EXPECT_EQ(ea[k].kind, eb[k].kind);
        EXPECT_EQ(ea[k].time, eb[k].time);
        EXPECT_EQ(ea[k].duration, eb[k].duration);
        EXPECT_EQ(ea[k].magnitude, eb[k].magnitude);
    }
}

TEST(NodeFaults, SchedulesAreNodeScoped)
{
    // Growing the fleet must never perturb existing nodes: node i's
    // schedule is a pure function of (seed, i), not of the count.
    const auto cfg = faultyConfig();
    const auto two = deriveNodeFaultPlans(cfg, 2);
    const auto eight = deriveNodeFaultPlans(cfg, 8);
    ASSERT_EQ(two.size(), 2u);
    ASSERT_EQ(eight.size(), 8u);
    for (std::size_t i = 0; i < 2; ++i) {
        SCOPED_TRACE("node " + std::to_string(i));
        expectSameSchedule(two[i], eight[i]);
    }
    // ...and distinct nodes draw from distinct streams.
    ASSERT_FALSE(two[0].crashes.empty());
    ASSERT_FALSE(two[1].crashes.empty());
    EXPECT_NE(two[0].crashes[0].time, two[1].crashes[0].time);
}

// --- Golden scenario (shared by goldens + thread bit-identity) -------

FleetConfig
goldenConfig(RouterPolicy p, bool crashy, int n)
{
    FleetConfig fc;
    for (int i = 0; i < n; ++i) {
        NodeSpec s;
        s.model = er::model::ModelId::DeepScaleR1_5B;
        s.powerMode = i % 2 ? er::hw::PowerMode::W30
                            : er::hw::PowerMode::MaxN;
        fc.nodes.push_back(s);
    }
    fc.server.maxBatch = 8;
    fc.router = p;
    fc.maxRetries = 3;
    fc.retryBackoff = 0.5;
    fc.paranoid = true;
    fc.nodeFaults.seed = 0xF1EE7;
    fc.nodeFaults.horizon = 240.0;
    if (crashy) {
        fc.nodeFaults.crashesPerHour = 90.0;
        fc.nodeFaults.meanRebootSeconds = 15.0;
        fc.nodeFaults.degradesPerHour = 30.0;
        fc.nodeFaults.meanDegradeSeconds = 20.0;
    }
    return fc;
}

std::vector<ServerRequest>
goldenTrace()
{
    er::Rng rng(42, "fleet-golden");
    auto t = ServingSimulator::poissonTrace(rng, 24, 1.2, 96, 192);
    for (auto &r : t)
        r.deadline = 60.0;
    return t;
}

std::string
runGolden(RouterPolicy p, bool crashy, int n)
{
    FleetSimulator sim(goldenConfig(p, crashy, n));
    return formatFleetReport(sim.run(goldenTrace()));
}

struct GoldenCase
{
    RouterPolicy policy;
    bool crashy;
    int nodes;
    const char *report;
};

// Exact %.17g renderings pinned at introduction; any arithmetic or
// event-ordering change in the fleet driver shows up here first.
const GoldenCase kGoldens[] = {
    {RouterPolicy::RoundRobin, false, 2,
     "fleet report (router=rr)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 0 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 47.666028644293519 throughput 0.50350324293008275 goodput 0.50350324293008275 deadline-hit 1\n"
     "latency mean 8.4049464283088202 p50 7.5189087971696349 p99 24.796064154665871 p999 26.81431800342008\n"
     "energy 906.62602349787289 J (37.776084312411371 J/query) tokens 4850\n"
     "dollars edge 0.00091343076254209827 cloud 0 (3.8059615105920764e-05 $/query)\n"
     "node 0: served 12 timed-out 0 cancelled 0 crashes 0 energy 522.7618930317642 busy 24.567952446609219 tokens 2539 up\n"
     "node 1: served 12 timed-out 0 cancelled 0 crashes 0 energy 383.86413046610875 busy 45.484421811765721 tokens 2311 up\n"
     ""},
    {RouterPolicy::RoundRobin, false, 4,
     "fleet report (router=rr)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 0 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 46.716681925238916 throughput 0.51373511582880382 goodput 0.51373511582880382 deadline-hit 1\n"
     "latency mean 7.7127663113675782 p50 6.7152883148864273 p99 23.705129299884593 p999 25.850812470792814\n"
     "energy 1363.5329737627414 J (56.813873906780891 J/query) tokens 4850\n"
     "dollars edge 0.0015441562368844176 cloud 0 (6.4339843203517393e-05 $/query)\n"
     "node 0: served 6 timed-out 0 cancelled 0 crashes 0 energy 369.62286010459508 busy 22.378951346340241 tokens 1174 up\n"
     "node 1: served 6 timed-out 0 cancelled 0 crashes 0 energy 364.81215630682379 busy 44.53507509271121 tokens 1425 up\n"
     "node 2: served 6 timed-out 0 cancelled 0 crashes 0 energy 440.7086729225793 busy 23.667905990854642 tokens 1365 up\n"
     "node 3: served 6 timed-out 0 cancelled 0 crashes 0 energy 188.38928442874322 busy 28.405456608304835 tokens 886 up\n"
     ""},
    {RouterPolicy::RoundRobin, true, 2,
     "fleet report (router=rr)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 6 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 49.101244478931648 throughput 0.4887859819988456 goodput 0.4887859819988456 deadline-hit 1\n"
     "latency mean 10.499515122001007 p50 8.0740855185784923 p99 35.476217204453235 p999 37.358689436040848\n"
     "energy 761.17984827720795 J (31.715827011550331 J/query) tokens 5337\n"
     "dollars edge 0.00086950177193010248 cloud 0 (3.6229240497087605e-05 $/query)\n"
     "node 0: served 11 timed-out 0 cancelled 0 crashes 4 energy 368.83599628385559 busy 23.524712512577207 tokens 2128 up\n"
     "node 1: served 13 timed-out 0 cancelled 0 crashes 4 energy 392.34385199335236 busy 43.498163080906963 tokens 3209 up\n"
     ""},
    {RouterPolicy::RoundRobin, true, 4,
     "fleet report (router=rr)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 6 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 55.501603733082476 throughput 0.43241993718632815 goodput 0.43241993718632815 deadline-hit 1\n"
     "latency mean 8.2841748762012735 p50 5.7929724075575741 p99 31.558256096696596 p999 34.542554777533233\n"
     "energy 1348.2812825856317 J (56.178386774401325 J/query) tokens 5628\n"
     "dollars edge 0.0014150732814813211 cloud 0 (5.8961386728388381e-05 $/query)\n"
     "node 0: served 8 timed-out 0 cancelled 0 crashes 4 energy 365.7501051242221 busy 24.307395809294576 tokens 1617 up\n"
     "node 1: served 8 timed-out 0 cancelled 0 crashes 4 energy 370.80662914613674 busy 48.84642720619803 tokens 1589 up\n"
     "node 2: served 7 timed-out 0 cancelled 0 crashes 5 energy 575.09495594832958 busy 28.387089892615101 tokens 2204 up\n"
     "node 3: served 1 timed-out 0 cancelled 0 crashes 8 energy 36.629592366943257 busy 7.1706786684459063 tokens 218 up\n"
     ""},
    {RouterPolicy::DeadlineAware, false, 2,
     "fleet report (router=deadline)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 0 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 35.164322106771799 throughput 0.68250995788080837 goodput 0.68250995788080837 deadline-hit 1\n"
     "latency mean 6.2046713395407957 p50 5.0448649541618185 p99 17.844786687299006 p999 18.734059976011487\n"
     "energy 739.26129149272401 J (30.802553812196834 J/query) tokens 4850\n"
     "dollars edge 0.00044456043891411256 cloud 0 (1.8523351621421357e-05 $/query)\n"
     "node 0: served 24 timed-out 0 cancelled 0 crashes 0 energy 739.26129149272401 busy 33.100630808153262 tokens 4850 up\n"
     "node 1: served 0 timed-out 0 cancelled 0 crashes 0 energy 0 busy 0 tokens 0 up\n"
     ""},
    {RouterPolicy::DeadlineAware, false, 4,
     "fleet report (router=deadline)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 0 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 34.555709807573471 throughput 0.69453066175303946 goodput 0.69453066175303946 deadline-hit 1\n"
     "latency mean 5.6501187639258701 p50 4.6907424318509499 p99 16.386787215550591 p999 17.047718757876225\n"
     "energy 1070.6980934518519 J (44.612420560493831 J/query) tokens 4850\n"
     "dollars edge 0.00075120856245638697 cloud 0 (3.1300356769016126e-05 $/query)\n"
     "node 0: served 11 timed-out 0 cancelled 0 crashes 0 energy 510.85636975548954 busy 24.153588376625819 tokens 2442 up\n"
     "node 1: served 0 timed-out 0 cancelled 0 crashes 0 energy 0 busy 0 tokens 0 up\n"
     "node 2: served 13 timed-out 0 cancelled 0 crashes 0 energy 559.84172369636235 busy 32.374102975045631 tokens 2408 up\n"
     "node 3: served 0 timed-out 0 cancelled 0 crashes 0 energy 0 busy 0 tokens 0 up\n"
     ""},
    {RouterPolicy::DeadlineAware, true, 2,
     "fleet report (router=deadline)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 4 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 40.331737215266713 throughput 0.59506487092044513 goodput 0.59506487092044513 deadline-hit 1\n"
     "latency mean 7.6291286002545329 p50 5.4176550693492578 p99 30.818922655505659 p999 33.218410346294284\n"
     "energy 897.81633340058102 J (37.409013891690876 J/query) tokens 5147\n"
     "dollars edge 0.00082572274234016859 cloud 0 (3.4405114264173691e-05 $/query)\n"
     "node 0: served 20 timed-out 0 cancelled 0 crashes 4 energy 618.87320549138008 busy 32.086151953770809 tokens 3934 up\n"
     "node 1: served 4 timed-out 0 cancelled 0 crashes 4 energy 278.94312790920094 busy 30.978946322107397 tokens 1213 up\n"
     ""},
    {RouterPolicy::DeadlineAware, true, 4,
     "fleet report (router=deadline)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 3 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 43.578119421907402 throughput 0.55073510097213663 goodput 0.55073510097213663 deadline-hit 1\n"
     "latency mean 6.7093179194058274 p50 4.6805285500176552 p99 29.284550312508941 p999 30.987297661202462\n"
     "energy 1421.2671579657872 J (59.219464915241133 J/query) tokens 5431\n"
     "dollars edge 0.0012497014505780113 cloud 0 (5.2070893774083804e-05 $/query)\n"
     "node 0: served 15 timed-out 0 cancelled 0 crashes 4 energy 664.99905116690888 busy 38.125230446613173 tokens 2884 up\n"
     "node 1: served 1 timed-out 0 cancelled 0 crashes 4 energy 244.83048846412279 busy 28.670418043449473 tokens 604 up\n"
     "node 2: served 8 timed-out 0 cancelled 0 crashes 5 energy 511.4376183347556 busy 28.442910362958973 tokens 1943 up\n"
     "node 3: served 0 timed-out 0 cancelled 0 crashes 8 energy 0 busy 0 tokens 0 up\n"
     ""},
    {RouterPolicy::CostAware, false, 2,
     "fleet report (router=cost)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 0 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 39.478081281198961 throughput 0.60793228092951312 goodput 0.60793228092951312 deadline-hit 1\n"
     "latency mean 8.1986175582622067 p50 5.7280980903375465 p99 29.83237697519219 p999 32.351465437601959\n"
     "energy 916.30907313966372 J (38.179544714152655 J/query) tokens 4850\n"
     "dollars edge 0.00091279819022029908 cloud 0 (3.8033257925845795e-05 $/query)\n"
     "node 0: served 14 timed-out 0 cancelled 0 crashes 0 energy 582.69629198869404 busy 32.555101657911038 tokens 2719 up\n"
     "node 1: served 10 timed-out 0 cancelled 0 crashes 0 energy 333.61278115096962 busy 37.414389982580673 tokens 2131 up\n"
     ""},
    {RouterPolicy::CostAware, false, 4,
     "fleet report (router=cost)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 0 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 37.971053115789225 throughput 0.63206042578840815 goodput 0.63206042578840815 deadline-hit 1\n"
     "latency mean 7.4753441678063304 p50 6.2324723381049258 p99 27.012008750916728 p999 30.713103266305676\n"
     "energy 1388.4896561302055 J (57.853735672091894 J/query) tokens 4850\n"
     "dollars edge 0.0015471408782693065 cloud 0 (6.4464203261221099e-05 $/query)\n"
     "node 0: served 7 timed-out 0 cancelled 0 crashes 0 energy 399.69011758702908 busy 24.995944738374536 tokens 1368 up\n"
     "node 1: served 5 timed-out 0 cancelled 0 crashes 0 energy 309.71712162936302 busy 35.90736181717093 tokens 1299 up\n"
     "node 2: served 7 timed-out 0 cancelled 0 crashes 0 energy 479.40591545850191 busy 29.670073490939817 tokens 1375 up\n"
     "node 3: served 5 timed-out 0 cancelled 0 crashes 0 energy 199.67650145531147 busy 28.569591361291902 tokens 808 up\n"
     ""},
    {RouterPolicy::CostAware, true, 2,
     "fleet report (router=cost)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 7 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 48.536156025833371 throughput 0.49447673580136836 goodput 0.49447673580136836 deadline-hit 1\n"
     "latency mean 9.8945965140590815 p50 5.8770118036211985 p99 34.692470377886352 p999 36.516160423359679\n"
     "energy 815.25490249267807 J (33.968954270528251 J/query) tokens 5515\n"
     "dollars edge 0.0008826540432836517 cloud 0 (3.677725180348549e-05 $/query)\n"
     "node 0: served 14 timed-out 0 cancelled 0 crashes 4 energy 427.81308504037702 busy 24.880919770814778 tokens 2851 up\n"
     "node 1: served 10 timed-out 0 cancelled 0 crashes 4 energy 387.44181745230105 busy 43.013887350235102 tokens 2664 up\n"
     ""},
    {RouterPolicy::CostAware, true, 4,
     "fleet report (router=cost)\n"
     "arrivals 24 served 24 timed-out 0 shed 0 offloaded 0\n"
     "retries 0 failovers 3 hedges 0 (wins 0, waste 0) cancelled-legs 0\n"
     "makespan 34.363287331994769 throughput 0.69841979226633011 goodput 0.69841979226633011 deadline-hit 1\n"
     "latency mean 7.6101309413624065 p50 6.7446491821294146 p99 15.91493808169384 p999 16.20935663087592\n"
     "energy 1236.0089235029475 J (51.500371812622809 J/query) tokens 5119\n"
     "dollars edge 0.0011568435058513446 cloud 0 (4.8201812743806027e-05 $/query)\n"
     "node 0: served 8 timed-out 0 cancelled 0 crashes 4 energy 551.03175007009963 busy 31.294012959566604 tokens 1985 up\n"
     "node 1: served 9 timed-out 0 cancelled 0 crashes 4 energy 193.59545732842534 busy 26.667377182207627 tokens 1354 up\n"
     "node 2: served 6 timed-out 0 cancelled 0 crashes 5 energy 447.00720254892161 busy 23.281769060498178 tokens 1537 up\n"
     "node 3: served 1 timed-out 0 cancelled 0 crashes 8 energy 44.374513555500954 busy 7.1842915208253606 tokens 243 up\n"
     ""},
};

TEST(FleetGolden, ReportsAreBitExact)
{
    for (const auto &g : kGoldens) {
        SCOPED_TRACE(std::string(routerPolicyName(g.policy)) +
                     (g.crashy ? "/crashy/" : "/healthy/") +
                     std::to_string(g.nodes) + " nodes");
        EXPECT_EQ(runGolden(g.policy, g.crashy, g.nodes), g.report);
    }
}

TEST(FleetGolden, ReportsAreThreadCountInvariant)
{
    const std::string one = runGolden(RouterPolicy::DeadlineAware,
                                      true, 4);
    for (const unsigned t : {2u, 4u}) {
        er::ThreadPool::setGlobalThreads(t);
        EXPECT_EQ(runGolden(RouterPolicy::DeadlineAware, true, 4), one)
            << "report drifted at " << t << " threads";
    }
    er::ThreadPool::setGlobalThreads(0);
}

// --- Hedging: first completion wins, the loser is cancelled ----------

TEST(FleetHedge, CancelOnFirstWin)
{
    // Node 0 is a slow 15 W build, node 1 runs MAXN.  Round-robin
    // sends the primary to node 0; the hedge timer fires early (90%
    // of the deadline still ahead) and duplicates onto node 1, which
    // finishes first — the node-0 leg must be withdrawn.
    FleetConfig fc;
    NodeSpec slow, fast;
    slow.model = fast.model = er::model::ModelId::DeepScaleR1_5B;
    slow.powerMode = er::hw::PowerMode::W15;
    fast.powerMode = er::hw::PowerMode::MaxN;
    fc.nodes = {slow, fast};
    fc.router = RouterPolicy::RoundRobin;
    fc.hedgeFraction = 0.9;
    fc.paranoid = true;

    std::vector<ServerRequest> trace(1);
    trace[0].arrival = 0.0;
    trace[0].inputTokens = 64;
    trace[0].outputTokens = 1024;
    trace[0].deadline = 300.0;

    FleetSimulator sim(fc);
    const auto rep = sim.run(trace);
    EXPECT_EQ(rep.served, 1u);
    EXPECT_EQ(rep.hedgesLaunched, 1u);
    EXPECT_EQ(rep.hedgeWins, 1u);
    EXPECT_EQ(rep.hedgeWaste, 0u);
    EXPECT_EQ(rep.cancelledLegs, 1u);
    ASSERT_EQ(rep.nodes.size(), 2u);
    EXPECT_EQ(rep.nodes[1].served, 1u);  // the hedge won
    EXPECT_EQ(rep.nodes[0].served, 0u);
    EXPECT_EQ(rep.nodes[0].cancelled, 1u);
}

// --- Failover: a crashed node's legs are re-homed, none lost ---------

TEST(FleetFailover, ConservationUnderForcedCrash)
{
    FleetConfig fc;
    fc.nodes.assign(2, NodeSpec{er::model::ModelId::DeepScaleR1_5B});
    fc.router = RouterPolicy::RoundRobin;
    fc.paranoid = true;
    fc.explicitSchedules.resize(2);
    fc.explicitSchedules[0].crashes.push_back({2.0, 50.0});

    // Eight requests land inside 2 s; round-robin puts half on node 0,
    // all of which are live when it dies.
    std::vector<ServerRequest> trace(8);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].arrival = 0.25 * static_cast<double>(i);
        trace[i].inputTokens = 64;
        trace[i].outputTokens = 128;
    }

    FleetSimulator sim(fc);
    const auto rep = sim.run(trace);
    // run() itself fatals if any arrival fails to reach a terminal
    // state; the tallies must also reconcile.
    EXPECT_EQ(rep.served + rep.timedOut + rep.shed + rep.offloaded,
              rep.arrivals);
    EXPECT_EQ(rep.served, rep.arrivals); // no deadlines: all complete
    EXPECT_GE(rep.failovers, 1u);
    EXPECT_EQ(rep.nodes[0].crashes, 1u);
    EXPECT_EQ(rep.nodes[1].crashes, 0u);
}

// --- Graceful drain: degraded nodes take no new work -----------------

TEST(FleetDrain, DegradedNodeIsAvoidedWhileAlternativesExist)
{
    FleetConfig fc;
    fc.nodes.assign(2, NodeSpec{er::model::ModelId::DeepScaleR1_5B});
    fc.router = RouterPolicy::RoundRobin;
    fc.paranoid = true;
    fc.explicitSchedules.resize(2);
    fc.explicitSchedules[0].degrades.push_back({0.0, 1000.0});

    std::vector<ServerRequest> trace(6);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].arrival = static_cast<double>(i);
        trace[i].inputTokens = 64;
        trace[i].outputTokens = 64;
    }

    FleetSimulator sim(fc);
    const auto rep = sim.run(trace);
    EXPECT_EQ(rep.served, rep.arrivals);
    EXPECT_EQ(rep.nodes[0].served, 0u); // drained the whole run
    EXPECT_EQ(rep.nodes[1].served, rep.arrivals);
}

// --- Per-try timeouts: capped-backoff retry, then a terminal state ---

TEST(FleetRetry, TimeoutBudgetExhaustsIntoTimedOut)
{
    FleetConfig fc;
    fc.nodes.assign(2, NodeSpec{er::model::ModelId::DeepScaleR1_5B});
    fc.router = RouterPolicy::LeastLoaded;
    fc.maxRetries = 2;
    fc.retryBackoff = 0.25;
    fc.requestTimeout = 1.0; // far below the ~10 s service time
    fc.paranoid = true;

    std::vector<ServerRequest> trace(3);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].arrival = static_cast<double>(i);
        trace[i].inputTokens = 64;
        trace[i].outputTokens = 512;
    }

    FleetSimulator sim(fc);
    const auto rep = sim.run(trace);
    EXPECT_EQ(rep.timedOut, rep.arrivals);
    EXPECT_EQ(rep.served, 0u);
    // Every request burns its full budget: 1 dispatch + maxRetries.
    EXPECT_EQ(rep.retries,
              static_cast<std::size_t>(fc.maxRetries) * rep.arrivals);
}

// --- Cloud offload: saturation spills to the priced tier -------------

TEST(FleetCloud, SaturationOffloadsAndCharges)
{
    FleetConfig fc;
    fc.nodes.assign(1, NodeSpec{er::model::ModelId::DeepScaleR1_5B});
    fc.router = RouterPolicy::CostAware;
    fc.server.maxBatch = 2; // tiny batch so the queue actually buries
    fc.paranoid = true;
    fc.cloud.enabled = true;
    fc.cloud.price = er::cost::o4Mini();
    fc.cloud.saturationBacklog = 2;

    // A burst far beyond one node's capacity.
    std::vector<ServerRequest> trace(12);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].arrival = 0.1 * static_cast<double>(i);
        trace[i].inputTokens = 96;
        trace[i].outputTokens = 256;
    }

    FleetSimulator sim(fc);
    const auto rep = sim.run(trace);
    EXPECT_EQ(rep.served + rep.offloaded, rep.arrivals);
    EXPECT_GT(rep.offloaded, 0u);
    EXPECT_GT(rep.cloudDollars, 0.0);
    EXPECT_GT(rep.dollarsPerQuery, 0.0);
}

} // namespace
