/**
 * @file
 * Crash/recovery tests (DESIGN.md §9).  The central claim under test:
 * a run that crashes at an arbitrary batch-step boundary and resumes
 * from its latest checkpoint + journal tail produces a ServingReport
 * that is bit-identical to the uninterrupted run — every counter and
 * every double (p50/p95/p99, goodput, throttle residency) compared
 * with EXPECT_EQ, never EXPECT_NEAR.  The matrix covers the three
 * golden scenarios (zero-fault, faulted with brownouts + thermal,
 * KV-pressure with preemption backoff) under all three schedulers,
 * with crash points at step 0, mid prefill chunk, during retry
 * backoff, and inside fault windows.  Journal replay must re-derive
 * the same report, and the invariant auditor must pass every healthy
 * run while catching seeded accounting bugs.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/auditor.hh"
#include "engine/checkpoint.hh"
#include "engine/executor.hh"
#include "engine/journal.hh"
#include "engine/server.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::engine;
using er::Seconds;
using er::Tokens;
using er::model::ModelId;
namespace fs = std::filesystem;

namespace {

InferenceEngine
makeEngine(ModelId id = ModelId::DeepScaleR1_5B)
{
    EngineConfig cfg;
    cfg.measurementNoise = false;
    return InferenceEngine(er::model::spec(id),
                           er::model::calibration(id), cfg);
}

er::perf::LatencyModel
toyModel()
{
    er::perf::LatencyModel m;
    m.prefill.a = 0.0;
    m.prefill.b = 1e-4;
    m.prefill.c = 0.01;
    m.decode.m = 1e-6;
    m.decode.n = 0.02;
    return m;
}

std::string
scratchDir(const std::string &tag)
{
    const auto dir = fs::temp_directory_path() /
        ("edgereason_recovery_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** One serving scenario: config, trace, and behavioural fault config
 *  (crash schedule left empty; tests add it per run). */
struct Scenario
{
    ServerConfig cfg;
    std::vector<ServerRequest> trace;
    FaultConfig fc;
    bool faulted = false;
};

/** The zero-fault golden trace, with chunked prefill so a crash can
 *  land mid prefill chunk. */
Scenario
zeroFaultScenario()
{
    Scenario s;
    s.cfg.prefillChunk = 64;
    er::Rng rng(42, "golden");
    s.trace = ServingSimulator::poissonTrace(rng, 40, 0.5, 120, 256);
    return s;
}

/** The faulted golden trace: deadlines, thermal throttling, frequent
 *  brownouts, KV shrink windows, budget degradation. */
Scenario
faultedScenario()
{
    Scenario s;
    s.cfg.maxBatch = 8;
    s.cfg.degrade.mode = DegradeMode::Budget;
    s.cfg.degrade.budget = er::strategy::TokenPolicy::hard(128);
    er::Rng rng(42, "golden-faults");
    s.trace = ServingSimulator::poissonTrace(rng, 50, 2.0, 120, 512);
    for (auto &r : s.trace)
        r.deadline = 30.0;
    s.fc.seed = 0xFA17;
    s.fc.horizon = s.trace.back().arrival + 600.0;
    s.fc.thermal = true;
    s.fc.thermalSpec.rThermal = 2.5;
    s.fc.thermalSpec.cThermal = 20.0;
    s.fc.thermalSpec.ambientC = 55.0;
    s.fc.thermalSpec.initialC = 55.0;
    s.fc.brownoutsPerHour = 300.0;
    s.fc.kvShrinksPerHour = 200.0;
    s.fc.kvShrinkFraction = 0.6;
    s.fc.kvShrinkDuration = 15.0;
    s.faulted = true;
    return s;
}

/** The KV-pressure golden trace: long outputs force preemption with
 *  retry backoff under severe shrink windows. */
Scenario
kvPressureScenario()
{
    Scenario s;
    er::Rng rng(7, "golden-kv");
    s.trace = ServingSimulator::poissonTrace(rng, 30, 4.0, 120, 3000);
    s.fc.seed = 0xFA17;
    s.fc.horizon = s.trace.back().arrival + 600.0;
    s.fc.kvShrinksPerHour = 240.0;
    s.fc.kvShrinkFraction = 0.97;
    s.fc.kvShrinkDuration = 30.0;
    s.faulted = true;
    return s;
}

ServingSimulator
makeServer(InferenceEngine &eng, const Scenario &s,
           SchedulerPolicy policy)
{
    ServerConfig cfg = s.cfg;
    cfg.scheduler = policy;
    if (policy == SchedulerPolicy::Spjf)
        cfg.spjfModel = toyModel();
    return ServingSimulator(eng, cfg);
}

FaultPlan
planOf(const Scenario &s, std::int64_t crash_at_step = -1)
{
    if (!s.faulted && crash_at_step < 0)
        return FaultPlan();
    FaultConfig fc = s.fc;
    fc.crash.atStep = crash_at_step;
    return FaultPlan(fc);
}

/** Bit-exact comparison of every ServingReport field. */
void
expectIdenticalReports(const ServingReport &a, const ServingReport &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.throughputQps, b.throughputQps);
    EXPECT_EQ(a.avgBatch, b.avgBatch);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.p99Latency, b.p99Latency);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.energyPerQuery, b.energyPerQuery);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.schedulerPolicy, b.schedulerPolicy);
    EXPECT_EQ(a.meanQueueDelay, b.meanQueueDelay);
    EXPECT_EQ(a.p95QueueDelay, b.p95QueueDelay);
    EXPECT_EQ(a.p99QueueDelay, b.p99QueueDelay);
    EXPECT_EQ(a.peakQueueDepth, b.peakQueueDepth);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.retriedCompleted, b.retriedCompleted);
    EXPECT_EQ(a.degradedCompleted, b.degradedCompleted);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.goodputQps, b.goodputQps);
    EXPECT_EQ(a.deadlineHitRate, b.deadlineHitRate);
    EXPECT_EQ(a.throttleResidency, b.throttleResidency);
}

void
expectIdenticalServed(const std::vector<ServedRequest> &a,
                      const std::vector<ServedRequest> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].traceIndex, b[i].traceIndex);
        EXPECT_EQ(a[i].outcome, b[i].outcome);
        EXPECT_EQ(a[i].queueDelay, b[i].queueDelay);
        EXPECT_EQ(a[i].serviceTime, b[i].serviceTime);
        EXPECT_EQ(a[i].finish, b[i].finish);
        EXPECT_EQ(a[i].generated, b[i].generated);
        EXPECT_EQ(a[i].preemptions, b[i].preemptions);
        EXPECT_EQ(a[i].degraded, b[i].degraded);
    }
}

/**
 * Run a scenario to completion uninterrupted, then crash it at
 * @p crash_step and resume; assert the resumed run is bit-identical.
 * The crashing run checkpoints every 4 steps, so most crash points
 * land several steps past the restored checkpoint and genuinely
 * exercise journal-tail re-execution (with byte-level verification).
 */
void
crashResumeRoundTrip(const Scenario &s, SchedulerPolicy policy,
                     std::int64_t crash_step, const std::string &tag)
{
    SCOPED_TRACE(tag + " policy=" +
                 std::string(schedulerPolicyName(policy)) +
                 " crash-step=" + std::to_string(crash_step));
    auto eng = makeEngine();

    auto baseline_srv = makeServer(eng, s, policy);
    const auto baseline = baseline_srv.run(s.trace, planOf(s));
    const auto baseline_served = baseline_srv.served();

    const auto dir = scratchDir(
        tag + "_" + schedulerPolicyName(policy) + "_" +
        std::to_string(crash_step));
    DurabilityOptions dur;
    dur.checkpointDir = dir;
    dur.checkpointEvery = 4;
    dur.paranoid = true;

    auto crash_srv = makeServer(eng, s, policy);
    bool crashed = false;
    ServingReport rep;
    try {
        rep = crash_srv.run(s.trace, planOf(s, crash_step), dur);
    } catch (const SimulatedCrash &c) {
        crashed = true;
        EXPECT_EQ(c.step, crash_step);
    }

    if (crashed) {
        auto resume_srv = makeServer(eng, s, policy);
        DurabilityOptions res = dur;
        res.resume = true;
        rep = resume_srv.run(s.trace, planOf(s), res);
        expectIdenticalServed(baseline_served, resume_srv.served());
    } else {
        // The schedule outlived the run; the durable run completed
        // and must still match.
        expectIdenticalServed(baseline_served, crash_srv.served());
    }
    expectIdenticalReports(baseline, rep);

    // The journal now covers the whole run: replay must re-derive the
    // exact same report through buildServingReport().
    expectIdenticalReports(
        baseline, replayServingReport(dir + "/journal.bin"));
    fs::remove_all(dir);
}

} // namespace

// ---------------------------------------------------------------------
// Crash/resume bit-identity matrix.
// ---------------------------------------------------------------------

TEST(Recovery, ZeroFaultCrashMatrix)
{
    const auto s = zeroFaultScenario();
    for (const auto policy :
         {SchedulerPolicy::Fcfs, SchedulerPolicy::Edf,
          SchedulerPolicy::Spjf}) {
        // Step 0 (before any work), step 2 (mid prefill chunk of the
        // first long prompt), and a mid-run decode step.
        for (const std::int64_t step : {0, 2, 57})
            crashResumeRoundTrip(s, policy, step, "zero");
    }
}

TEST(Recovery, FaultedCrashMatrix)
{
    const auto s = faultedScenario();
    for (const auto policy :
         {SchedulerPolicy::Fcfs, SchedulerPolicy::Edf,
          SchedulerPolicy::Spjf}) {
        // The faulted trace averages a brownout every 12 s of sim
        // time, so mid-run crash points land inside/around brownout
        // windows; early points land during chunkless prefill.
        for (const std::int64_t step : {0, 3, 41, 90})
            crashResumeRoundTrip(s, policy, step, "faulted");
    }
}

TEST(Recovery, KvPressureCrashMatrix)
{
    const auto s = kvPressureScenario();
    for (const auto policy :
         {SchedulerPolicy::Fcfs, SchedulerPolicy::Edf,
          SchedulerPolicy::Spjf}) {
        // Severe shrink windows (97% of the pool for 30 s) keep the
        // queue in retry backoff for long stretches: the mid and late
        // crash points land during backoff sleeps.
        for (const std::int64_t step : {0, 25, 160})
            crashResumeRoundTrip(s, policy, step, "kv");
    }
}

// ---------------------------------------------------------------------
// Resume validation: corrupted inputs must never partially restore.
// ---------------------------------------------------------------------

TEST(Recovery, ResumeRefusesMismatchedRun)
{
    auto eng = makeEngine();
    const auto s = zeroFaultScenario();
    const auto dir = scratchDir("mismatch");
    DurabilityOptions dur;
    dur.checkpointDir = dir;
    dur.checkpointEvery = 4;

    auto srv = makeServer(eng, s, SchedulerPolicy::Fcfs);
    EXPECT_THROW(srv.run(s.trace, planOf(s, 20), dur), SimulatedCrash);

    // A different trace is a different run: its fingerprint differs
    // and the restore must be refused outright.
    er::Rng rng(1234, "other");
    const auto other =
        ServingSimulator::poissonTrace(rng, 40, 0.5, 120, 256);
    DurabilityOptions res = dur;
    res.resume = true;
    auto srv2 = makeServer(eng, s, SchedulerPolicy::Fcfs);
    try {
        srv2.run(other, planOf(s), res);
        FAIL() << "expected a fingerprint fatal()";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("fingerprint"),
                  std::string::npos)
            << e.what();
    }

    // So must a scheduler-policy switch (policy is fingerprinted).
    auto srv3 = makeServer(eng, s, SchedulerPolicy::Edf);
    EXPECT_THROW(srv3.run(s.trace, planOf(s), res),
                 std::runtime_error);
    fs::remove_all(dir);
}

TEST(Recovery, ResumeRefusesCorruptCheckpoint)
{
    auto eng = makeEngine();
    const auto s = zeroFaultScenario();
    const auto dir = scratchDir("corrupt_ckpt");
    DurabilityOptions dur;
    dur.checkpointDir = dir;
    dur.checkpointEvery = 4;

    auto srv = makeServer(eng, s, SchedulerPolicy::Fcfs);
    EXPECT_THROW(srv.run(s.trace, planOf(s, 20), dur), SimulatedCrash);

    // Flip one payload bit in the newest checkpoint.
    const auto ckpts = listCheckpoints(dir);
    ASSERT_FALSE(ckpts.empty());
    const std::string victim = ckpts.back().second;
    std::string data;
    {
        std::ifstream in(victim, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        data = buf.str();
    }
    data[data.size() / 2] ^= 0x01;
    {
        std::ofstream out(victim,
                          std::ios::binary | std::ios::trunc);
        out << data;
    }

    DurabilityOptions res = dur;
    res.resume = true;
    auto srv2 = makeServer(eng, s, SchedulerPolicy::Fcfs);
    try {
        srv2.run(s.trace, planOf(s), res);
        FAIL() << "expected a checksum fatal()";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("corrupt at offset"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("checksum"), std::string::npos) << msg;
    }
    fs::remove_all(dir);
}

TEST(Recovery, ResumeWithoutCheckpointsFails)
{
    auto eng = makeEngine();
    const auto s = zeroFaultScenario();
    const auto dir = scratchDir("empty");
    DurabilityOptions res;
    res.checkpointDir = dir;
    res.resume = true;
    auto srv = makeServer(eng, s, SchedulerPolicy::Fcfs);
    EXPECT_THROW(srv.run(s.trace, planOf(s), res),
                 std::runtime_error);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// RNG bank capture.
// ---------------------------------------------------------------------

TEST(Recovery, RngBankRoundTripsThroughCheckpoint)
{
    auto eng = makeEngine();
    const auto s = zeroFaultScenario();
    const auto dir = scratchDir("rngbank");
    er::RngBank bank(99);
    auto &harness = bank.create("harness/noise");
    for (int i = 0; i < 11; ++i)
        harness.uniform();
    const auto expected_states = bank.serialize();

    DurabilityOptions dur;
    dur.checkpointDir = dir;
    dur.checkpointEvery = 4;
    dur.rngBank = &bank;
    auto srv = makeServer(eng, s, SchedulerPolicy::Fcfs);
    EXPECT_THROW(srv.run(s.trace, planOf(s, 8), dur), SimulatedCrash);

    // Perturb the bank, then resume: the checkpointed states win.
    for (int i = 0; i < 100; ++i)
        harness.uniform();
    DurabilityOptions res = dur;
    res.resume = true;
    auto srv2 = makeServer(eng, s, SchedulerPolicy::Fcfs);
    srv2.run(s.trace, planOf(s), res);
    EXPECT_EQ(bank.serialize(), expected_states);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Invariant auditor: healthy views pass, seeded bugs panic.
// ---------------------------------------------------------------------

namespace {

/** A small self-consistent AuditView over local containers. */
struct AuditFixture
{
    ServingState st;
    std::vector<ServedRequest> served;

    AuditView view()
    {
        AuditView v;
        v.traceSize = 2;
        v.nextArrival = 1;
        v.served = &served;
        v.state = &st;
        v.acc.clock = 1.0;
        v.acc.busy = 0.5;
        v.kvBudget = 1e9;
        v.kvPerToken = 1000.0;
        return v;
    }

    AuditFixture()
    {
        TrackedRequest t;
        t.req.arrival = 0.0;
        t.req.inputTokens = 100;
        t.req.outputTokens = 100;
        t.traceIndex = 0;
        st.enqueueNew(t); // 1 queued + 1 not yet arrived == traceSize 2
    }
};

} // namespace

TEST(Auditor, AcceptsConsistentState)
{
    AuditFixture f;
    Auditor a;
    EXPECT_NO_THROW(a.check(f.view()));
    EXPECT_EQ(a.checksPassed(), 1u);
}

TEST(Auditor, CatchesSeededAccountingBugs)
{
    // Each seeded bug is the silent-corruption class the auditor
    // exists to catch; all must panic (std::logic_error), not warn.
    {
        AuditFixture f; // lost request: cursor claims 2 pulled
        auto v = f.view();
        v.nextArrival = 2;
        EXPECT_THROW(Auditor().check(v), std::logic_error);
    }
    {
        AuditFixture f; // KV bytes committed with nothing in flight
        auto v = f.view();
        v.acc.committedKv = 4096.0;
        EXPECT_THROW(Auditor().check(v), std::logic_error);
    }
    {
        AuditFixture f; // busy time exceeding the wall clock
        auto v = f.view();
        v.acc.busy = 2.0;
        EXPECT_THROW(Auditor().check(v), std::logic_error);
    }
    {
        AuditFixture f; // negative energy integrator
        auto v = f.view();
        v.acc.energy = -1.0;
        EXPECT_THROW(Auditor().check(v), std::logic_error);
    }
    {
        AuditFixture f; // illegal lifecycle state in the wait queue
        f.st.pool.overrideState(f.st.queue[0], RequestState::Decoding);
        EXPECT_THROW(Auditor().check(f.view()), std::logic_error);
    }
    {
        AuditFixture f; // clock moving backwards between boundaries
        Auditor a;
        a.check(f.view());
        auto v = f.view();
        v.acc.clock = 0.25;
        v.acc.busy = 0.1;
        EXPECT_THROW(a.check(v), std::logic_error);
    }
    {
        AuditFixture f; // peak queue depth below the live depth
        f.st.peakQueueDepth = 0;
        EXPECT_THROW(Auditor().check(f.view()), std::logic_error);
    }
    {
        AuditFixture f; // retired record finishing in the future
        ServedRequest s;
        s.outcome = RequestOutcome::Completed;
        s.finish = 5.0;
        f.served.push_back(s);
        auto v = f.view();
        v.nextArrival = 2; // conservation holds: 1 served + 1 queued
        EXPECT_THROW(Auditor().check(v), std::logic_error);
    }
}
