/**
 * @file
 * Tests for the Monte-Carlo response simulator: anchor reproduction,
 * voting dynamics (Fig. 9 behaviours), free-form grading and
 * determinism.
 */

#include <gtest/gtest.h>

#include "accuracy/simulate.hh"

namespace er = edgereason;
using namespace er::acc;
using er::model::ModelId;
using er::strategy::TokenPolicy;

namespace {

double
meanAccuracy(ModelId id, Dataset d, bool quant, TokenPolicy pol,
             int parallel, int seeds = 8)
{
    QuestionBank bank(d, 99);
    const ResponseProfile prof(id, d, quant);
    double acc = 0.0;
    for (int s = 0; s < seeds; ++s) {
        ResponseSimulator sim(prof, 1000 + 7919ull * s);
        acc += sim.evaluate(bank.questions(), pol, parallel)
                   .accuracyPct;
    }
    return acc / seeds;
}

} // namespace

TEST(Simulate, ReproducesPublishedAnchorsWithinNoise)
{
    // Seed-averaged accuracy must sit within ~0.7 pp of Tables X/XI.
    EXPECT_NEAR(meanAccuracy(ModelId::Dsr1Qwen1_5B, Dataset::MmluRedux,
                             false, TokenPolicy::base(), 1), 38.3, 0.7);
    EXPECT_NEAR(meanAccuracy(ModelId::Dsr1Llama8B, Dataset::MmluRedux,
                             false, TokenPolicy::base(), 1), 61.7, 0.7);
    EXPECT_NEAR(meanAccuracy(ModelId::Dsr1Qwen14B, Dataset::MmluRedux,
                             false, TokenPolicy::noReasoning(), 1),
                69.0, 0.7);
    EXPECT_NEAR(meanAccuracy(ModelId::Dsr1Qwen1_5B, Dataset::MmluRedux,
                             false, TokenPolicy::hard(128), 1), 15.9,
                0.7);
    EXPECT_NEAR(meanAccuracy(ModelId::L1Max, Dataset::MmluRedux, false,
                             TokenPolicy::base(), 1), 43.8, 0.7);
}

TEST(Simulate, TokenLengthsMatchPublishedMeans)
{
    QuestionBank bank(Dataset::MmluRedux, 99);
    const ResponseProfile prof(ModelId::Dsr1Qwen14B, Dataset::MmluRedux,
                               false);
    ResponseSimulator sim(prof, 4242);
    const auto base = sim.evaluate(bank.questions(), TokenPolicy::base(),
                                   1);
    EXPECT_NEAR(base.avgMaxTokens, 1317.8, 40.0);
    const auto hard = sim.evaluate(bank.questions(),
                                   TokenPolicy::hard(128), 1);
    EXPECT_NEAR(hard.avgMaxTokens, 78.2, 6.0);
    // Hard caps are strict.
    for (const auto &q : bank.subset(200)) {
        const auto o = sim.simulateQuestion(q, TokenPolicy::hard(128),
                                            4);
        EXPECT_LE(o.maxTokens, 128);
    }
}

TEST(Simulate, VotingImprovesStrongConfigs)
{
    // Fig. 9a: 14B at a 128-token budget gains 1.5-1.8x by SF=32.
    const double sf1 = meanAccuracy(ModelId::Dsr1Qwen14B,
                                    Dataset::MmluRedux, false,
                                    TokenPolicy::hard(128), 1, 4);
    const double sf32 = meanAccuracy(ModelId::Dsr1Qwen14B,
                                     Dataset::MmluRedux, false,
                                     TokenPolicy::hard(128), 32, 4);
    EXPECT_GT(sf32 / sf1, 1.4);
    EXPECT_LT(sf32 / sf1, 1.9);
}

TEST(Simulate, VotingDegradesWeakTruncatedConfigs)
{
    // Fig. 9a: the 1.5B at 128T degrades by SF=16.
    const double sf1 = meanAccuracy(ModelId::Dsr1Qwen1_5B,
                                    Dataset::MmluRedux, false,
                                    TokenPolicy::hard(128), 1, 4);
    const double sf16 = meanAccuracy(ModelId::Dsr1Qwen1_5B,
                                     Dataset::MmluRedux, false,
                                     TokenPolicy::hard(128), 16, 4);
    EXPECT_LT(sf16, sf1);
}

TEST(Simulate, VotingPlateausAtHighBudget)
{
    // Fig. 9b: with a 512-token budget, gains plateau after ~4x.
    const double sf4 = meanAccuracy(ModelId::Dsr1Qwen14B,
                                    Dataset::MmluRedux, false,
                                    TokenPolicy::hard(512), 4, 4);
    const double sf32 = meanAccuracy(ModelId::Dsr1Qwen14B,
                                     Dataset::MmluRedux, false,
                                     TokenPolicy::hard(512), 32, 4);
    EXPECT_LT(sf32 - sf4, 12.0);
}

TEST(Simulate, L1GainsLittleFromParallelism)
{
    const double sf1 = meanAccuracy(ModelId::L1Max, Dataset::MmluRedux,
                                    false, TokenPolicy::l1(128), 1, 4);
    const double sf32 = meanAccuracy(ModelId::L1Max, Dataset::MmluRedux,
                                     false, TokenPolicy::l1(128), 32,
                                     4);
    EXPECT_LT(sf32 - sf1, 8.0);
}

TEST(Simulate, FreeFormVotingNeedsRepeatedCorrectAnswers)
{
    // On free-form datasets, wrong answers never agree, so accuracy
    // rises with parallelism only through repeated correct samples.
    const double sf1 = meanAccuracy(ModelId::Dsr1Llama8B,
                                    Dataset::NaturalPlanMeeting, false,
                                    TokenPolicy::base(), 1, 4);
    const double sf8 = meanAccuracy(ModelId::Dsr1Llama8B,
                                    Dataset::NaturalPlanMeeting, false,
                                    TokenPolicy::base(), 8, 4);
    EXPECT_NEAR(sf1, 10.0, 1.5); // Table XIII
    EXPECT_GT(sf8, sf1);
}

TEST(Simulate, DeterministicPerSeed)
{
    QuestionBank bank(Dataset::MmluRedux, 99);
    const ResponseProfile prof(ModelId::Dsr1Llama8B, Dataset::MmluRedux,
                               false);
    ResponseSimulator a(prof, 31337);
    ResponseSimulator b(prof, 31337);
    const auto ra = a.evaluate(bank.subset(500), TokenPolicy::base(), 4);
    const auto rb = b.evaluate(bank.subset(500), TokenPolicy::base(), 4);
    EXPECT_DOUBLE_EQ(ra.accuracyPct, rb.accuracyPct);
    EXPECT_DOUBLE_EQ(ra.avgSumTokens, rb.avgSumTokens);
}

TEST(Simulate, OutcomeBookkeeping)
{
    QuestionBank bank(Dataset::MmluRedux, 99);
    const ResponseProfile prof(ModelId::Dsr1Llama8B, Dataset::MmluRedux,
                               false);
    ResponseSimulator sim(prof, 1);
    const auto o = sim.simulateQuestion(bank.questions()[0],
                                        TokenPolicy::base(), 8);
    EXPECT_EQ(o.samples, 8);
    EXPECT_GE(o.sumTokens, static_cast<double>(o.maxTokens));
    EXPECT_LE(static_cast<double>(o.maxTokens) * 8, o.sumTokens * 8);
    EXPECT_EQ(o.promptTokens, bank.questions()[0].promptTokens);
    EXPECT_THROW(sim.simulateQuestion(bank.questions()[0],
                                      TokenPolicy::base(), 0),
                 std::runtime_error);
}
