/**
 * @file
 * Tests for the speculative-decoding estimator and the heterogeneous
 * CPU-offload engine mode (both from the paper's Section VI
 * discussion).
 */

#include <gtest/gtest.h>

#include "engine/speculative.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::engine;
using er::model::ModelId;

namespace {

InferenceEngine
makeEngine(ModelId id, EngineConfig cfg = {})
{
    cfg.measurementNoise = false;
    return InferenceEngine(er::model::spec(id),
                           er::model::calibration(id), cfg);
}

} // namespace

TEST(Speculative, ExpectedAcceptedFormula)
{
    EXPECT_DOUBLE_EQ(expectedAccepted(0.0, 4), 1.0);
    // alpha = 0.5, gamma = 3: (1 - 0.5^4) / 0.5 = 1.875.
    EXPECT_NEAR(expectedAccepted(0.5, 3), 1.875, 1e-12);
    // High acceptance approaches gamma + 1.
    EXPECT_NEAR(expectedAccepted(0.99, 4), 4.90, 0.05);
    EXPECT_THROW(expectedAccepted(1.0, 4), std::runtime_error);
    EXPECT_THROW(expectedAccepted(0.5, 0), std::runtime_error);
}

TEST(Speculative, SmallDraftSpeedsUpLargeTarget)
{
    auto target = makeEngine(ModelId::Dsr1Qwen14B);
    auto draft = makeEngine(ModelId::Dsr1Qwen1_5B);
    SpeculativeConfig cfg;
    cfg.gamma = 4;
    cfg.acceptance = 0.8;
    const auto e = estimateSpeculative(target, draft, 512, cfg);
    // Draft is ~8x faster per token; verification is one padded pass.
    EXPECT_LT(e.draftStep, 0.3 * e.plainStep);
    EXPECT_LT(e.verifyStep, 1.3 * e.plainStep);
    // Net speedup should be tangible (bandwidth-bound decode).
    EXPECT_GT(e.speedup, 1.3);
    EXPECT_LT(e.speedup, 4.0);
    EXPECT_NEAR(e.acceptedPerCycle, expectedAccepted(0.8, 4), 1e-12);
    // Energy per emitted token should also drop.
    EXPECT_LT(e.energyPerToken, e.plainEnergyPerToken);
}

TEST(Speculative, LowAcceptanceHurts)
{
    auto target = makeEngine(ModelId::Dsr1Qwen14B);
    auto draft = makeEngine(ModelId::Dsr1Qwen1_5B);
    SpeculativeConfig good{4, 0.85};
    SpeculativeConfig bad{4, 0.2};
    const auto eg = estimateSpeculative(target, draft, 512, good);
    const auto eb = estimateSpeculative(target, draft, 512, bad);
    EXPECT_GT(eg.speedup, eb.speedup);
    EXPECT_LT(eb.speedup, 1.0); // rejecting most drafts is a loss
}

TEST(Speculative, SelfDraftingIsPointless)
{
    auto target = makeEngine(ModelId::Dsr1Llama8B);
    auto draft = makeEngine(ModelId::Dsr1Llama8B);
    const auto e = estimateSpeculative(target, draft, 512,
                                       SpeculativeConfig{4, 0.9});
    EXPECT_LT(e.speedup, 1.0);
}

TEST(Speculative, CombinedWeightsMustFit)
{
    // Two 14B models (2 x 29.4 GB) exceed the 56 GB usable budget.
    auto target = makeEngine(ModelId::Dsr1Qwen14B);
    auto draft = makeEngine(ModelId::Dsr1Qwen14B);
    EXPECT_THROW(estimateSpeculative(target, draft, 512),
                 std::runtime_error);
}

TEST(HeterogeneousOffload, OverlapNeverSlowsDecode)
{
    auto plain = makeEngine(ModelId::Dsr1Qwen1_5B);
    EngineConfig cfg;
    cfg.offloadElementwiseToCpu = true;
    auto offload = makeEngine(ModelId::Dsr1Qwen1_5B, cfg);
    for (er::Tokens ctx : {128, 512, 2048}) {
        EXPECT_LE(offload.decodeStepLatency(ctx),
                  plain.decodeStepLatency(ctx) + 1e-9)
            << "ctx " << ctx;
    }
    // The gain is visible but modest (elementwise is a small share).
    const double gain = plain.decodeStepLatency(512) /
        offload.decodeStepLatency(512);
    EXPECT_GT(gain, 1.0);
    EXPECT_LT(gain, 1.5);
}

TEST(DlaOffload, RequiresInt8Weights)
{
    EngineConfig cfg;
    cfg.offloadFfnToDla = true;
    cfg.measurementNoise = false;
    EXPECT_THROW(
        InferenceEngine(er::model::spec(ModelId::Dsr1Llama8B),
                        er::model::calibration(ModelId::Dsr1Llama8B),
                        cfg),
        std::runtime_error);
}

TEST(DlaOffload, HelpsPrefillLeavesDecodeAlone)
{
    EngineConfig plain_cfg;
    plain_cfg.measurementNoise = false;
    EngineConfig dla_cfg = plain_cfg;
    dla_cfg.offloadFfnToDla = true;
    InferenceEngine plain(
        er::model::quantizedSpec(ModelId::Dsr1Llama8B),
        er::model::calibration(ModelId::Dsr1Llama8B,
                               er::DType::W4A16),
        plain_cfg);
    InferenceEngine dla(
        er::model::quantizedSpec(ModelId::Dsr1Llama8B),
        er::model::calibration(ModelId::Dsr1Llama8B,
                               er::DType::W4A16),
        dla_cfg);
    // Prefill gains from the extra compute.
    EXPECT_LT(dla.prefillLatency(2048),
              0.95 * plain.prefillLatency(2048));
    // Decode FFN stays on the GPU (offload would regress it).
    EXPECT_DOUBLE_EQ(dla.decodeStepLatency(512),
                     plain.decodeStepLatency(512));
}

TEST(HeterogeneousOffload, NoEffectOnCpuBackend)
{
    EngineConfig base_cfg;
    base_cfg.backend = er::hw::Backend::Cpu;
    auto cpu = makeEngine(ModelId::Dsr1Qwen1_5B, base_cfg);
    EngineConfig off_cfg = base_cfg;
    off_cfg.offloadElementwiseToCpu = true;
    auto cpu_off = makeEngine(ModelId::Dsr1Qwen1_5B, off_cfg);
    EXPECT_DOUBLE_EQ(cpu.decodeStepLatency(512),
                     cpu_off.decodeStepLatency(512));
}
