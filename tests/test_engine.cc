/**
 * @file
 * Integration tests for the inference-engine simulator: calibrated TBT
 * and prefill latencies against the paper's measurements, batch
 * scaling, framework overheads, noise determinism, power modes and KV
 * exhaustion.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "engine/engine.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::engine;
using er::model::ModelId;

namespace {

InferenceEngine
makeEngine(ModelId id, bool quant = false, EngineConfig cfg = {})
{
    cfg.measurementNoise = false;
    auto spec = quant ? er::model::quantizedSpec(id)
                      : er::model::spec(id);
    auto calib = er::model::calibration(
        id, quant ? er::DType::W4A16 : er::DType::FP16);
    return InferenceEngine(std::move(spec), calib, cfg);
}

} // namespace

TEST(Engine, DecodeTbtMatchesPaper)
{
    // Text of Section IV-A + Tables X/XIX: TBT ~25 / ~105 / ~195 ms.
    EXPECT_NEAR(makeEngine(ModelId::Dsr1Qwen1_5B)
                    .decodeStepLatency(512), 0.025, 0.004);
    EXPECT_NEAR(makeEngine(ModelId::Dsr1Llama8B)
                    .decodeStepLatency(512), 0.102, 0.010);
    EXPECT_NEAR(makeEngine(ModelId::Dsr1Qwen14B)
                    .decodeStepLatency(512), 0.190, 0.015);
}

TEST(Engine, QuantizedDecodeSpeedup)
{
    // Table XIX: 73.6 / 25.9 / 15.1 tok/s for the W4 variants.
    EXPECT_NEAR(1.0 / makeEngine(ModelId::Dsr1Qwen1_5B, true)
                          .decodeStepLatency(512), 73.6, 12.0);
    EXPECT_NEAR(1.0 / makeEngine(ModelId::Dsr1Llama8B, true)
                          .decodeStepLatency(512), 25.9, 3.0);
    EXPECT_NEAR(1.0 / makeEngine(ModelId::Dsr1Qwen14B, true)
                          .decodeStepLatency(512), 15.1, 1.5);
}

TEST(Engine, PrefillLatencyMatchesTableXVI)
{
    // Table XVI GPU column at 128 tokens: 0.051 / 0.148 / 0.270 s.
    EXPECT_NEAR(makeEngine(ModelId::Dsr1Qwen1_5B).prefillLatency(128),
                0.051, 0.012);
    EXPECT_NEAR(makeEngine(ModelId::Dsr1Llama8B).prefillLatency(128),
                0.148, 0.035);
    EXPECT_NEAR(makeEngine(ModelId::Dsr1Qwen14B).prefillLatency(128),
                0.270, 0.060);
}

TEST(Engine, PrefillSteppedPattern)
{
    // Within a 128-token segment in the compute-bound regime, latency
    // plateaus; crossing the boundary jumps (Fig. 2).
    auto eng = makeEngine(ModelId::Dsr1Qwen14B);
    const double at_2049 = eng.prefillLatency(2049);
    const double at_2176 = eng.prefillLatency(2176);
    const double at_2177 = eng.prefillLatency(2177);
    EXPECT_NEAR(at_2049, at_2176, 0.02 * at_2176); // same segment
    EXPECT_GT(at_2177, at_2176 * 1.02);            // next segment
}

TEST(Engine, DecodeLatencyNearLinearInOutput)
{
    auto eng = makeEngine(ModelId::Dsr1Llama8B);
    const auto r256 = eng.run(512, 256);
    const auto r512 = eng.run(512, 512);
    EXPECT_NEAR(r512.decode.seconds / r256.decode.seconds, 2.0, 0.06);
}

TEST(Engine, TbtGrowsSlightlyWithContext)
{
    // Fig. 3b: ~3.1% TBT increase from I=1 to I=4k on the 8B.
    auto eng = makeEngine(ModelId::Dsr1Llama8B);
    const double t1 = eng.decodeStepLatency(1);
    const double t4k = eng.decodeStepLatency(4096);
    EXPECT_GT(t4k, t1);
    EXPECT_NEAR(t4k / t1, 1.031, 0.025);
}

TEST(Engine, BatchScalingRoughlyDoublesBySixtyFour)
{
    // Fig. 10a: about 2x decode latency from SF=1 to SF=64.
    auto eng = makeEngine(ModelId::Dsr1Qwen14B);
    const double t1 = eng.decodeStepLatency(640, 1);
    const double t64 = eng.decodeStepLatency(640, 64);
    EXPECT_NEAR(t64 / t1, 2.0, 0.35);
    // And the early steps are cheap (batch padding).
    const double t4 = eng.decodeStepLatency(640, 4);
    EXPECT_LT(t4 / t1, 1.25);
}

TEST(Engine, FrameworkOverheads)
{
    // Table IX: HF ~1.12x slower than vLLM; TRT-LLM within a few
    // percent, at I=64, O=128 on DSR1-Llama-8B.
    EngineConfig hf;
    hf.kind = EngineKind::HfTransformers;
    EngineConfig trt;
    trt.kind = EngineKind::TrtLlm;
    auto v = makeEngine(ModelId::Dsr1Llama8B);
    auto h = makeEngine(ModelId::Dsr1Llama8B, false, hf);
    auto t = makeEngine(ModelId::Dsr1Llama8B, false, trt);
    const double lv = v.run(64, 128).totalSeconds();
    const double lh = h.run(64, 128).totalSeconds();
    const double lt = t.run(64, 128).totalSeconds();
    EXPECT_NEAR(lh / lv, 1.12, 0.04);
    EXPECT_NEAR(lt / lv, 1.0, 0.05);
}

TEST(Engine, NoiseIsDeterministicPerSeed)
{
    EngineConfig cfg;
    cfg.measurementNoise = true;
    cfg.seed = 77;
    auto spec = er::model::spec(ModelId::Dsr1Qwen1_5B);
    auto calib = er::model::calibration(ModelId::Dsr1Qwen1_5B);
    InferenceEngine a(spec, calib, cfg);
    InferenceEngine b(spec, calib, cfg);
    const auto ra = a.run(256, 128);
    const auto rb = b.run(256, 128);
    EXPECT_DOUBLE_EQ(ra.totalSeconds(), rb.totalSeconds());
    EXPECT_DOUBLE_EQ(ra.totalEnergy(), rb.totalEnergy());
}

TEST(Engine, NoiseMagnitudeMatchesCalibration)
{
    EngineConfig cfg;
    cfg.measurementNoise = true;
    auto spec = er::model::spec(ModelId::Dsr1Llama8B);
    auto calib = er::model::calibration(ModelId::Dsr1Llama8B);
    InferenceEngine eng(spec, calib, cfg);
    er::RunningStats pf;
    for (int i = 0; i < 300; ++i)
        pf.add(eng.prefillOnly(512).seconds);
    // cv should approximate the calibrated prefill noise.
    EXPECT_NEAR(pf.stddev() / pf.mean(), calib.prefillNoiseCv, 0.04);
}

TEST(Engine, PowerDrawsWithinEnvelope)
{
    auto eng = makeEngine(ModelId::Dsr1Qwen14B);
    const auto r = eng.run(512, 512, 16);
    EXPECT_GT(r.decode.avgPower, 10.0);
    EXPECT_LE(r.decode.avgPower, 60.0);
    EXPECT_GT(r.prefill.avgPower, 5.0);
    EXPECT_NEAR(r.decode.energy,
                r.decode.avgPower * r.decode.seconds, 1e-6);
}

TEST(Engine, TbtTraceRecordsEveryStep)
{
    EngineConfig cfg;
    cfg.recordTbt = true;
    auto eng = makeEngine(ModelId::Dsr1Qwen1_5B, false, cfg);
    const auto r = eng.run(512, 200);
    ASSERT_EQ(r.tbtTrace.size(), 200u);
    // TBT is non-decreasing along the run (context grows).
    EXPECT_GE(r.tbtTrace.back(), r.tbtTrace.front());
}

TEST(Engine, WeightsMustFitInDram)
{
    // A hypothetical 40B model at FP16 exceeds the Orin's DRAM.
    auto spec = er::model::spec(ModelId::Dsr1Qwen14B);
    spec.layers *= 3;
    auto calib = er::model::calibration(ModelId::Dsr1Qwen14B);
    EXPECT_THROW(InferenceEngine(spec, calib, EngineConfig{}),
                 std::runtime_error);
}

TEST(Engine, KvExhaustionIsReported)
{
    // 14B FP16 leaves ~26 GB for KV; a batch-64 32k-context request
    // needs ~400 GB and must be rejected.
    auto eng = makeEngine(ModelId::Dsr1Qwen14B);
    EXPECT_THROW(eng.run(512, 32000, 64), std::runtime_error);
}

TEST(Engine, DecodePhaseDominates)
{
    // Takeaway #2: decode dominates >99% of latency for reasoning-scale
    // outputs.
    auto eng = makeEngine(ModelId::Dsr1Qwen14B);
    const auto r = eng.run(170, 1300);
    EXPECT_GT(r.decode.seconds / r.totalSeconds(), 0.99);
}

TEST(Engine, PrefixCachingCutsPrefillTime)
{
    auto eng = makeEngine(ModelId::Dsr1Llama8B);
    const double full = eng.prefillLatency(3000);
    const double cached = eng.prefillSuffixLatency(2800, 200);
    EXPECT_LT(cached, 0.3 * full);
    // And a zero prefix degenerates to the plain prefill.
    EXPECT_DOUBLE_EQ(eng.prefillSuffixLatency(0, 3000), full);
}

TEST(Engine, W8A8SitsBetweenFp16AndW4OnLatency)
{
    EngineConfig cfg;
    cfg.measurementNoise = false;
    auto fp16 = makeEngine(ModelId::Dsr1Qwen14B);
    InferenceEngine w8(er::model::quantizedSpec8(ModelId::Dsr1Qwen14B),
                       er::model::calibration(ModelId::Dsr1Qwen14B,
                                              er::DType::INT8),
                       cfg);
    auto w4 = makeEngine(ModelId::Dsr1Qwen14B, true);
    const double t16 = fp16.decodeStepLatency(512);
    const double t8 = w8.decodeStepLatency(512);
    const double t4 = w4.decodeStepLatency(512);
    EXPECT_LT(t4, t8);
    EXPECT_LT(t8, t16);
    // Roughly the 2x weight shrink, derated by dequantization.
    EXPECT_NEAR(t16 / t8, 1.8, 0.3);
}

TEST(Engine, CheckpointIntegrationMatchesExactStepSum)
{
    // The engine integrates decode over ~17 context checkpoints; the
    // error versus summing every step's kernel-level cost must stay
    // well under the 0.5% measurement noise it coexists with.
    auto eng = makeEngine(ModelId::Dsr1Llama8B);
    const er::Tokens I = 512;
    const er::Tokens O = 700;
    const double integrated = eng.run(I, O).decode.seconds;
    double exact = 0.0;
    for (er::Tokens o = 0; o < O; ++o)
        exact += eng.decodeStepLatency(I + o);
    EXPECT_NEAR(integrated, exact, 0.002 * exact);
}

TEST(Engine, CpuBackendMatchesTableXvii)
{
    EngineConfig cfg;
    cfg.backend = er::hw::Backend::Cpu;
    auto eng = makeEngine(ModelId::Dsr1Llama8B, false, cfg);
    // Table XVII: 8B decode of 128 tokens takes 63.8 s on the CPU.
    const auto r = eng.run(512, 128);
    EXPECT_NEAR(r.decode.seconds, 63.8, 8.0);
}
