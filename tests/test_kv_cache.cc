/**
 * @file
 * Unit tests for the paged KV cache: block allocation, prefix sharing
 * via fork, copy-on-write, capacity exhaustion and release.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "engine/kv_cache.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using er::engine::KvCache;
using er::engine::SeqId;
using er::model::ModelId;

namespace {

KvCache
smallCache(er::Bytes capacity = 0)
{
    const auto s = er::model::spec(ModelId::Dsr1Qwen1_5B);
    if (capacity == 0)
        capacity = static_cast<er::Bytes>(s.kvBytesPerToken() * 4096);
    return KvCache(capacity, s, 16);
}

} // namespace

TEST(KvCache, BlockGeometry)
{
    const auto s = er::model::spec(ModelId::Dsr1Qwen1_5B);
    KvCache c(static_cast<er::Bytes>(s.kvBytesPerToken() * 1024), s,
              16);
    EXPECT_EQ(c.blockTokens(), 16);
    EXPECT_NEAR(static_cast<double>(c.blockBytes()),
                s.kvBytesPerToken() * 16, 1.0);
    EXPECT_EQ(c.blockCapacity(), 64u);
}

TEST(KvCache, AppendAllocatesBlocksLazily)
{
    auto c = smallCache();
    const SeqId s = c.createSequence();
    EXPECT_TRUE(c.append(s, 10));
    EXPECT_EQ(c.sequenceTokens(s), 10);
    EXPECT_EQ(c.sequenceBlocks(s), 1u);
    EXPECT_TRUE(c.append(s, 10));
    EXPECT_EQ(c.sequenceBlocks(s), 2u); // 20 tokens over 16-token blocks
    EXPECT_EQ(c.blocksInUse(), 2u);
}

TEST(KvCache, ForkSharesBlocks)
{
    auto c = smallCache();
    const SeqId parent = c.createSequence();
    ASSERT_TRUE(c.append(parent, 64));
    const std::size_t blocks_before = c.blocksInUse();
    const SeqId child = c.fork(parent);
    EXPECT_EQ(c.blocksInUse(), blocks_before); // no copy on fork
    EXPECT_EQ(c.sequenceTokens(child), 64);
}

TEST(KvCache, CopyOnWriteOnSharedTail)
{
    auto c = smallCache();
    const SeqId parent = c.createSequence();
    ASSERT_TRUE(c.append(parent, 24)); // tail block half full
    const SeqId child = c.fork(parent);
    const std::size_t before = c.blocksInUse();
    ASSERT_TRUE(c.append(child, 1));
    // The shared tail must be copied for the child.
    EXPECT_EQ(c.blocksInUse(), before + 1);
    EXPECT_EQ(c.sequenceTokens(parent), 24);
    EXPECT_EQ(c.sequenceTokens(child), 25);
}

TEST(KvCache, ParallelSamplingFootprint)
{
    // Prompt shared, generated suffix per sample: footprint should be
    // prompt + batch * output, not batch * (prompt + output).
    auto c = smallCache();
    const SeqId root = c.createSequence();
    ASSERT_TRUE(c.append(root, 512));
    std::vector<SeqId> seqs = {root};
    for (int b = 1; b < 8; ++b)
        seqs.push_back(c.fork(root));
    for (SeqId s : seqs)
        ASSERT_TRUE(c.append(s, 64));
    const auto tokens_resident = static_cast<double>(c.blocksInUse()) *
        c.blockTokens();
    EXPECT_LT(tokens_resident, 512 + 8 * 64 + 8 * 16 + 16);
    EXPECT_GT(tokens_resident, 512 + 8 * 64 - 1);
}

TEST(KvCache, ReturnsFalseWhenFull)
{
    auto c = smallCache();
    const SeqId s = c.createSequence();
    EXPECT_TRUE(c.append(s, 4096));
    EXPECT_FALSE(c.append(s, 17)); // beyond capacity
    EXPECT_EQ(c.freeTokenCapacity(), 0);
}

TEST(KvCache, ReleaseRecyclesBlocks)
{
    auto c = smallCache();
    const SeqId a = c.createSequence();
    ASSERT_TRUE(c.append(a, 2048));
    const std::size_t used = c.blocksInUse();
    EXPECT_GT(used, 0u);
    c.release(a);
    EXPECT_EQ(c.blocksInUse(), 0u);
    // Blocks are reusable afterwards.
    const SeqId b = c.createSequence();
    EXPECT_TRUE(c.append(b, 4096));
}

TEST(KvCache, ForkedBlocksSurviveParentRelease)
{
    auto c = smallCache();
    const SeqId parent = c.createSequence();
    ASSERT_TRUE(c.append(parent, 64));
    const SeqId child = c.fork(parent);
    c.release(parent);
    EXPECT_EQ(c.sequenceTokens(child), 64);
    EXPECT_GT(c.blocksInUse(), 0u);
    c.release(child);
    EXPECT_EQ(c.blocksInUse(), 0u);
}

TEST(KvCache, UnknownSequenceFails)
{
    auto c = smallCache();
    EXPECT_THROW(c.append(12345, 1), std::runtime_error);
    EXPECT_THROW(c.release(12345), std::runtime_error);
    EXPECT_THROW(c.fork(12345), std::runtime_error);
}

TEST(KvCache, RandomizedStressKeepsRefcountsConsistent)
{
    // Failure-injection style property test: thousands of random
    // create/append/fork/release operations, with the cache's block
    // accounting checked against an independent shadow model of
    // logical token counts.
    const auto spec = er::model::spec(ModelId::Dsr1Qwen1_5B);
    KvCache cache(static_cast<er::Bytes>(spec.kvBytesPerToken() *
                                         20000),
                  spec, 16);
    er::Rng rng(2024, "kv-stress");

    std::vector<SeqId> live;
    std::map<SeqId, er::Tokens> shadow_tokens;
    int rejected = 0;
    for (int op = 0; op < 5000; ++op) {
        const double r = rng.uniform();
        if (live.empty() || r < 0.25) {
            const SeqId s = cache.createSequence();
            live.push_back(s);
            shadow_tokens[s] = 0;
        } else if (r < 0.65) {
            const std::size_t idx = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(live.size()) -
                                   1));
            const er::Tokens n = rng.uniformInt(1, 120);
            if (cache.append(live[idx], n))
                shadow_tokens[live[idx]] += n;
            else
                ++rejected; // full: acceptable, state must stay sane
        } else if (r < 0.85) {
            const std::size_t idx = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(live.size()) -
                                   1));
            if (cache.blocksInUse() < cache.blockCapacity()) {
                const SeqId child = cache.fork(live[idx]);
                live.push_back(child);
                shadow_tokens[child] = shadow_tokens[live[idx]];
            }
        } else {
            const std::size_t idx = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(live.size()) -
                                   1));
            cache.release(live[idx]);
            shadow_tokens.erase(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        }

        // Invariants after every operation.
        ASSERT_LE(cache.blocksInUse(), cache.blockCapacity());
        ASSERT_EQ(cache.sequenceCount(), live.size());
        for (SeqId s : live) {
            ASSERT_EQ(cache.sequenceTokens(s), shadow_tokens[s]);
            // A sequence's block count covers its tokens.
            ASSERT_GE(static_cast<er::Tokens>(
                          cache.sequenceBlocks(s)) *
                          cache.blockTokens(),
                      shadow_tokens[s]);
        }
    }
    EXPECT_GT(rejected, 0); // the stress actually hit the capacity

    // Releasing everything returns the cache to empty.
    for (SeqId s : live)
        cache.release(s);
    EXPECT_EQ(cache.blocksInUse(), 0u);
}

TEST(KvCache, FourteenBModelBatchThirtyFitsIn64GB)
{
    // Section III-B's batch-30 AIME workload on the 1.5B fits easily;
    // the 14B at batch 30 with 4k contexts is the tight case.
    const auto s14 = er::model::spec(ModelId::Dsr1Qwen14B);
    const er::Bytes budget = 56LL * 1024 * 1024 * 1024 -
        static_cast<er::Bytes>(s14.weightBytes());
    KvCache c(budget, s14, 16);
    const SeqId root = c.createSequence();
    ASSERT_TRUE(c.append(root, 512));
    std::vector<SeqId> seqs = {root};
    for (int b = 1; b < 30; ++b)
        seqs.push_back(c.fork(root));
    bool ok = true;
    for (SeqId s : seqs)
        ok = ok && c.append(s, 4096);
    EXPECT_TRUE(ok);
    EXPECT_LT(c.bytesInUse(), budget);
}
