/**
 * @file
 * Macro-stepping equivalence tests (DESIGN.md §10).  The central
 * claim: fast-forwarding decode between scheduler-visible events
 * (ServerConfig::exactSteps = false, the default) produces the same
 * run the token-stepped legacy loop produces.  Every integer field,
 * every per-request record, and every TIMING double is compared with
 * EXPECT_EQ — the fast path replays the exact per-step clock
 * arithmetic, so scheduling decisions cannot drift.  Only the two
 * energy aggregates may differ: the fast path collapses the power
 * integral into log-gamma partial sums, bounded at 1e-9 relative
 * (observed ~1e-12).  The %.17g goldens in test_scheduler pin the
 * legacy loop via exactSteps.
 *
 * Matrix: {fcfs, edf, spjf} x {zero-fault, faulted, KV-pressure} x
 * {thermal on, off}, plus a horizon-splitting property test (capping
 * segments at K' < K must reproduce the same accumulators), journal
 * coalescing checks, and a crash/resume that tail-verifies across
 * coalesced segments.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/binio.hh"
#include "engine/journal.hh"
#include "engine/server.hh"
#include "model/calibration.hh"
#include "model/zoo.hh"

namespace er = edgereason;
using namespace er::engine;
using er::Seconds;
using er::Tokens;
using er::model::ModelId;
namespace fs = std::filesystem;

namespace {

InferenceEngine
makeEngine()
{
    EngineConfig cfg;
    cfg.measurementNoise = false;
    return InferenceEngine(
        er::model::spec(ModelId::DeepScaleR1_5B),
        er::model::calibration(ModelId::DeepScaleR1_5B), cfg);
}

er::perf::LatencyModel
toyModel()
{
    er::perf::LatencyModel m;
    m.prefill.a = 0.0;
    m.prefill.b = 1e-4;
    m.prefill.c = 0.01;
    m.decode.m = 1e-6;
    m.decode.n = 0.02;
    return m;
}

/** One scenario of the equivalence matrix. */
struct Scenario
{
    std::string name;
    ServerConfig cfg;
    std::vector<ServerRequest> trace;
    FaultConfig fc;
    bool faulted = false;
};

Scenario
zeroFaultScenario(bool thermal)
{
    Scenario s;
    s.name = thermal ? "zero-fault/thermal" : "zero-fault";
    s.cfg.prefillChunk = 64;
    er::Rng rng(42, "golden");
    s.trace = ServingSimulator::poissonTrace(rng, 40, 0.5, 120, 256);
    if (thermal) {
        // Thermal integration without any discrete fault events: the
        // governor alone perturbs speed and power mid-run.
        s.fc.seed = 0xBEEF;
        s.fc.horizon = s.trace.back().arrival + 600.0;
        s.fc.thermal = true;
        s.fc.thermalSpec.rThermal = 2.5;
        s.fc.thermalSpec.cThermal = 20.0;
        s.fc.thermalSpec.ambientC = 55.0;
        s.fc.thermalSpec.initialC = 55.0;
        s.faulted = true;
    }
    return s;
}

Scenario
faultedScenario(bool thermal)
{
    Scenario s;
    s.name = thermal ? "faulted/thermal" : "faulted";
    s.cfg.maxBatch = 8;
    s.cfg.degrade.mode = DegradeMode::Budget;
    s.cfg.degrade.budget = er::strategy::TokenPolicy::hard(128);
    er::Rng rng(42, "golden-faults");
    s.trace = ServingSimulator::poissonTrace(rng, 50, 2.0, 120, 512);
    for (auto &r : s.trace)
        r.deadline = 30.0;
    s.fc.seed = 0xFA17;
    s.fc.horizon = s.trace.back().arrival + 600.0;
    s.fc.thermal = thermal;
    s.fc.thermalSpec.rThermal = 2.5;
    s.fc.thermalSpec.cThermal = 20.0;
    s.fc.thermalSpec.ambientC = 55.0;
    s.fc.thermalSpec.initialC = 55.0;
    s.fc.brownoutsPerHour = 300.0;
    s.fc.kvShrinksPerHour = 200.0;
    s.fc.kvShrinkFraction = 0.6;
    s.fc.kvShrinkDuration = 15.0;
    s.faulted = true;
    return s;
}

Scenario
kvPressureScenario(bool thermal)
{
    Scenario s;
    s.name = thermal ? "kv-pressure/thermal" : "kv-pressure";
    er::Rng rng(7, "golden-kv");
    s.trace = ServingSimulator::poissonTrace(rng, 30, 4.0, 120, 3000);
    s.fc.seed = 0xFA17;
    s.fc.horizon = s.trace.back().arrival + 600.0;
    s.fc.thermal = thermal;
    if (thermal) {
        s.fc.thermalSpec.rThermal = 2.5;
        s.fc.thermalSpec.cThermal = 20.0;
        s.fc.thermalSpec.ambientC = 55.0;
        s.fc.thermalSpec.initialC = 55.0;
    }
    s.fc.kvShrinksPerHour = 240.0;
    s.fc.kvShrinkFraction = 0.97;
    s.fc.kvShrinkDuration = 30.0;
    s.faulted = true;
    return s;
}

struct RunResult
{
    ServingReport report;
    std::vector<ServedRequest> served;
};

RunResult
runScenario(const Scenario &s, SchedulerPolicy policy,
            bool exact_steps, std::uint64_t horizon_cap = 0)
{
    auto eng = makeEngine();
    ServerConfig cfg = s.cfg;
    cfg.scheduler = policy;
    if (policy == SchedulerPolicy::Spjf)
        cfg.spjfModel = toyModel();
    cfg.exactSteps = exact_steps;
    cfg.macroHorizonCap = horizon_cap;
    ServingSimulator srv(eng, cfg);
    RunResult out;
    out.report = s.faulted ? srv.run(s.trace, FaultPlan(s.fc))
                           : srv.run(s.trace);
    out.served = srv.served();
    return out;
}

/** Same-mode comparison: every field bit-identical, doubles included
 *  (resume/replay of one run must not drift at all). */
void
expectIdenticalReports(const ServingReport &a, const ServingReport &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.throughputQps, b.throughputQps);
    EXPECT_EQ(a.avgBatch, b.avgBatch);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.p99Latency, b.p99Latency);
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.energyPerQuery, b.energyPerQuery);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.schedulerPolicy, b.schedulerPolicy);
    EXPECT_EQ(a.meanQueueDelay, b.meanQueueDelay);
    EXPECT_EQ(a.p95QueueDelay, b.p95QueueDelay);
    EXPECT_EQ(a.p99QueueDelay, b.p99QueueDelay);
    EXPECT_EQ(a.peakQueueDepth, b.peakQueueDepth);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.retriedCompleted, b.retriedCompleted);
    EXPECT_EQ(a.degradedCompleted, b.degradedCompleted);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.goodputQps, b.goodputQps);
    EXPECT_EQ(a.deadlineHitRate, b.deadlineHitRate);
    EXPECT_EQ(a.throttleResidency, b.throttleResidency);
}

/** Cross-mode comparison (exact vs macro): bit-identical except the
 *  two energy aggregates, which the fast path integrates via
 *  log-gamma partial sums — 1e-9 relative, the design contract. */
void
expectEquivalentReports(const ServingReport &a, const ServingReport &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.throughputQps, b.throughputQps);
    EXPECT_EQ(a.avgBatch, b.avgBatch);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.p99Latency, b.p99Latency);
    EXPECT_NEAR(a.totalEnergy, b.totalEnergy,
                1e-9 * std::max(1.0, std::abs(a.totalEnergy)));
    EXPECT_NEAR(a.energyPerQuery, b.energyPerQuery,
                1e-9 * std::max(1.0, std::abs(a.energyPerQuery)));
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.schedulerPolicy, b.schedulerPolicy);
    EXPECT_EQ(a.meanQueueDelay, b.meanQueueDelay);
    EXPECT_EQ(a.p95QueueDelay, b.p95QueueDelay);
    EXPECT_EQ(a.p99QueueDelay, b.p99QueueDelay);
    EXPECT_EQ(a.peakQueueDepth, b.peakQueueDepth);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.retriedCompleted, b.retriedCompleted);
    EXPECT_EQ(a.degradedCompleted, b.degradedCompleted);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.goodputQps, b.goodputQps);
    EXPECT_EQ(a.deadlineHitRate, b.deadlineHitRate);
    EXPECT_EQ(a.throttleResidency, b.throttleResidency);
}

void
expectIdenticalServed(const std::vector<ServedRequest> &a,
                      const std::vector<ServedRequest> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("served record " + std::to_string(i));
        EXPECT_EQ(a[i].traceIndex, b[i].traceIndex);
        EXPECT_EQ(a[i].outcome, b[i].outcome);
        EXPECT_EQ(a[i].queueDelay, b[i].queueDelay);
        EXPECT_EQ(a[i].serviceTime, b[i].serviceTime);
        EXPECT_EQ(a[i].finish, b[i].finish);
        EXPECT_EQ(a[i].generated, b[i].generated);
        EXPECT_EQ(a[i].preemptions, b[i].preemptions);
        EXPECT_EQ(a[i].degraded, b[i].degraded);
    }
}

std::vector<Scenario>
matrixScenarios()
{
    return {zeroFaultScenario(false), zeroFaultScenario(true),
            faultedScenario(false),   faultedScenario(true),
            kvPressureScenario(false), kvPressureScenario(true)};
}

const SchedulerPolicy kPolicies[] = {SchedulerPolicy::Fcfs,
                                     SchedulerPolicy::Edf,
                                     SchedulerPolicy::Spjf};

} // namespace

TEST(MacroStep, EquivalenceMatrixMacroMatchesExactBitForBit)
{
    for (const auto &s : matrixScenarios()) {
        for (const auto policy : kPolicies) {
            SCOPED_TRACE(s.name + " / " + schedulerPolicyName(policy));
            const auto exact = runScenario(s, policy, true);
            const auto macro = runScenario(s, policy, false);
            expectEquivalentReports(exact.report, macro.report);
            expectIdenticalServed(exact.served, macro.served);
        }
    }
}

// Splitting any horizon K into K1 + K2 must reproduce the same
// accumulators: capping the segment length changes only where the
// journal would coalesce, never what the run computes.  cap = 1
// degenerates every segment into single steps through the macro
// code path — the strongest split.
TEST(MacroStep, HorizonSplittingReproducesAccumulators)
{
    const Scenario scenarios[] = {faultedScenario(true),
                                  kvPressureScenario(false)};
    for (const auto &s : scenarios) {
        const auto unbounded =
            runScenario(s, SchedulerPolicy::Fcfs, false, 0);
        for (const std::uint64_t cap : {1ULL, 3ULL, 17ULL}) {
            SCOPED_TRACE(s.name + " / cap " + std::to_string(cap));
            const auto split =
                runScenario(s, SchedulerPolicy::Fcfs, false, cap);
            expectEquivalentReports(unbounded.report, split.report);
            expectIdenticalServed(unbounded.served, split.served);
        }
    }
}

namespace {

/** Decode Step records of a journal as (count, generatedTokens). */
std::vector<std::pair<std::uint32_t, double>>
decodeStepRecords(const std::string &path)
{
    std::vector<std::pair<std::uint32_t, double>> out;
    for (const auto &rec : readJournal(path).records) {
        if (rec.type != JournalRecordType::Step)
            continue;
        er::ByteReader r(rec.payload);
        const std::uint8_t kind = r.u8();
        const std::uint32_t count = r.u32();
        ExecAccumulators acc;
        restore(r, acc);
        if (kind == 1)
            out.emplace_back(count, acc.generatedTokens);
    }
    return out;
}

std::string
scratchDir(const std::string &tag)
{
    const auto dir =
        fs::temp_directory_path() / ("edgereason_macro_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

} // namespace

// The macro journal coalesces: its decode Step records carry counts
// that sum to the exact run's record count, at least one of them > 1,
// and both journals replay to the same report.
TEST(MacroStep, JournalCoalescesStepsAndReplaysIdentically)
{
    const Scenario s = zeroFaultScenario(false);
    auto eng = makeEngine();

    const auto run_durable = [&](bool exact, const std::string &dir) {
        ServerConfig cfg = s.cfg;
        cfg.exactSteps = exact;
        DurabilityOptions dur;
        dur.checkpointDir = dir;
        ServingSimulator srv(eng, cfg);
        return srv.run(s.trace, FaultPlan(), dur);
    };

    const std::string exactDir = scratchDir("exact");
    const std::string macroDir = scratchDir("macro");
    const auto exactRep = run_durable(true, exactDir);
    const auto macroRep = run_durable(false, macroDir);
    expectEquivalentReports(exactRep, macroRep);

    const auto exactSteps = decodeStepRecords(exactDir + "/journal.bin");
    const auto macroSteps = decodeStepRecords(macroDir + "/journal.bin");
    ASSERT_FALSE(exactSteps.empty());
    ASSERT_FALSE(macroSteps.empty());
    EXPECT_LT(macroSteps.size(), exactSteps.size());

    std::uint64_t exactCount = 0;
    for (const auto &[count, gen] : exactSteps) {
        EXPECT_EQ(count, 1u);
        exactCount += count;
    }
    std::uint64_t macroCount = 0;
    std::uint32_t maxCount = 0;
    for (const auto &[count, gen] : macroSteps) {
        macroCount += count;
        maxCount = std::max(maxCount, count);
    }
    EXPECT_EQ(exactCount, macroCount);
    EXPECT_GT(maxCount, 1u);
    // The shared suffix of both journals: final generated totals agree.
    EXPECT_EQ(exactSteps.back().second, macroSteps.back().second);

    expectIdenticalReports(exactRep,
                           replayServingReport(exactDir +
                                               "/journal.bin"));
    expectIdenticalReports(macroRep,
                           replayServingReport(macroDir +
                                               "/journal.bin"));

    fs::remove_all(exactDir);
    fs::remove_all(macroDir);
}

// Crash/resume in macro mode: the resumed run re-derives the same
// segmentation, so byte-for-byte tail verification passes across
// coalesced Step records and the final report is bit-identical to
// the uninterrupted run.
TEST(MacroStep, CrashResumeTailVerifiesAcrossCoalescedSegments)
{
    const Scenario s = faultedScenario(true);
    auto eng = makeEngine();

    ServerConfig cfg = s.cfg;
    cfg.exactSteps = false;
    ServingSimulator base_srv(eng, cfg);
    const auto baseline = base_srv.run(s.trace, FaultPlan(s.fc));

    const std::string dir = scratchDir("resume");
    DurabilityOptions dur;
    dur.checkpointDir = dir;
    dur.checkpointEvery = 5;
    dur.paranoid = true;

    FaultConfig crash_fc = s.fc;
    crash_fc.crash.atStep = 13;
    ServingSimulator crash_srv(eng, cfg);
    EXPECT_THROW(crash_srv.run(s.trace, FaultPlan(crash_fc), dur),
                 SimulatedCrash);

    // The journal tail past the surviving checkpoint contains
    // coalesced segments (checkpointEvery caps them at 5 steps, and
    // decode horizons regularly reach that cap).
    ServingSimulator resume_srv(eng, cfg);
    DurabilityOptions res = dur;
    res.resume = true;
    const auto resumed =
        resume_srv.run(s.trace, FaultPlan(s.fc), res);
    expectIdenticalReports(baseline, resumed);

    std::uint32_t maxCount = 0;
    for (const auto &[count, gen] :
         decodeStepRecords(dir + "/journal.bin"))
        maxCount = std::max(maxCount, count);
    EXPECT_GT(maxCount, 1u);

    fs::remove_all(dir);
}
