/**
 * @file
 * Tests for the thermal/throttling model: RC response, steady state,
 * hysteretic governance and sustained-throughput derating.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/thermal.hh"

namespace er = edgereason;
using namespace er::hw;

TEST(Thermal, SteadyStateFollowsPowerTimesResistance)
{
    ThermalSimulator sim;
    EXPECT_NEAR(sim.steadyStateC(0.0), 25.0, 1e-12);
    EXPECT_NEAR(sim.steadyStateC(30.0), 25.0 + 30.0 * 1.4, 1e-12);
}

TEST(Thermal, RcResponseConvergesExponentially)
{
    ThermalSpec spec;
    spec.throttleC = 1000.0; // disable governance for this test
    spec.recoverC = -1000.0;
    // recoverC < throttleC holds; but recover would re-step... keep
    // hysteresis valid and irrelevant by starting at MAXN.
    spec.recoverC = 999.0;
    ThermalSimulator sim(spec);
    const double tau = spec.rThermal * spec.cThermal;
    // After one time constant at constant power the gap to steady
    // state shrinks by e.
    const double target = sim.steadyStateC(20.0);
    double t = 0.0;
    while (t < tau) {
        sim.step(20.0, 1.0);
        t += 1.0;
    }
    const double gap0 = target - spec.initialC;
    const double gap = target - sim.temperature();
    EXPECT_NEAR(gap / gap0, std::exp(-1.0), 0.01);
}

TEST(Thermal, LowPowerNeverThrottles)
{
    ThermalSimulator sim;
    for (int i = 0; i < 5000; ++i)
        sim.step(10.0, 1.0); // steady state 39 C << 85 C
    EXPECT_EQ(sim.mode(), PowerMode::MaxN);
    EXPECT_LT(sim.temperature(), 45.0);
}

TEST(Thermal, HighPowerThrottlesAndOscillatesUnderHysteresis)
{
    // 55 W at MAXN -> steady state 102 C > 85 C: must throttle.
    ThermalSimulator sim;
    bool throttled = false;
    double max_temp = 0.0;
    for (int i = 0; i < 7200; ++i) {
        const auto s = sim.step(55.0, 1.0);
        throttled = throttled || s.mode != PowerMode::MaxN;
        max_temp = std::max(max_temp, s.temperatureC);
    }
    EXPECT_TRUE(throttled);
    // Temperature stays bounded near the throttle point.
    EXPECT_LT(max_temp, 90.0);
    EXPECT_GT(max_temp, 80.0);
}

TEST(Thermal, SustainedSpeedBelowOneWhenHot)
{
    ThermalSimulator hot;
    const double s_hot = hot.sustainedSpeedFactor(55.0, 3600.0);
    EXPECT_LT(s_hot, 0.95);
    EXPECT_GT(s_hot, 0.3);

    ThermalSimulator cool;
    const double s_cool = cool.sustainedSpeedFactor(15.0, 3600.0);
    EXPECT_NEAR(s_cool, 1.0, 1e-9);
}

TEST(Thermal, BetterHeatsinkSustainsMoreThroughput)
{
    ThermalSpec stock;
    ThermalSpec upgraded = stock;
    upgraded.rThermal = 0.8; // bigger heatsink / active fan
    ThermalSimulator a(stock);
    ThermalSimulator b(upgraded);
    EXPECT_LT(a.sustainedSpeedFactor(45.0, 3600.0),
              b.sustainedSpeedFactor(45.0, 3600.0) + 1e-9);
}

TEST(Thermal, TrajectoryIsRecorded)
{
    ThermalSimulator sim;
    sim.step(20.0, 1.0);
    sim.step(20.0, 1.0);
    ASSERT_EQ(sim.trajectory().size(), 2u);
    EXPECT_DOUBLE_EQ(sim.trajectory()[1].time, 2.0);
    EXPECT_GT(sim.trajectory()[1].temperatureC,
              sim.trajectory()[0].temperatureC);
}

TEST(Thermal, RejectsBadConfiguration)
{
    ThermalSpec bad;
    bad.recoverC = bad.throttleC + 1.0;
    EXPECT_THROW(ThermalSimulator{bad}, std::runtime_error);
    ThermalSimulator sim;
    EXPECT_THROW(sim.step(10.0, 0.0), std::runtime_error);
}

TEST(Thermal, ThrottleFiresExactlyAtTheThreshold)
{
    // Sitting exactly at the throttle point must step down (the
    // governor uses >=, not >): start at T == throttleC with the
    // steady state pinned there, so the RC update is the identity.
    ThermalSpec spec;
    spec.initialC = spec.throttleC;
    ThermalSimulator sim(spec);
    const double pin = (spec.throttleC - spec.ambientC) / spec.rThermal;
    const auto s = sim.step(pin, 1.0, /*idle=*/pin);
    EXPECT_DOUBLE_EQ(s.temperatureC, spec.throttleC);
    EXPECT_EQ(s.mode, PowerMode::W50);
}

TEST(Thermal, RecoveryFiresExactlyAtTheThreshold)
{
    // Symmetric boundary: exactly at recoverC steps back up (<=).
    ThermalSpec spec;
    spec.rThermal = 2.0; // keep the pinning power below the W30 cap
    spec.initialC = spec.recoverC;
    ThermalSimulator sim(spec, PowerMode::W30);
    const double pin = (spec.recoverC - spec.ambientC) / spec.rThermal;
    const auto s = sim.step(pin, 1.0, /*idle=*/pin);
    EXPECT_DOUBLE_EQ(s.temperatureC, spec.recoverC);
    EXPECT_EQ(s.mode, PowerMode::W50);
}

TEST(Thermal, HysteresisOscillationStaysInsideTheBand)
{
    // 48 W straddles the band: MAXN steady state (92 C) sits above the
    // throttle point while the W50-derated draw settles below the
    // recovery point (71 C), so the governor must cycle down and back
    // up repeatedly rather than latching either way.
    ThermalSimulator sim;
    int downs = 0;
    int ups = 0;
    PowerMode prev = sim.mode();
    for (int i = 0; i < 7200; ++i) {
        const auto s = sim.step(48.0, 1.0);
        if (powerModeScale(s.mode) < powerModeScale(prev))
            ++downs;
        else if (powerModeScale(s.mode) > powerModeScale(prev))
            ++ups;
        prev = s.mode;
    }
    EXPECT_GT(downs, 1);
    EXPECT_GT(ups, 1);
    // The governor keeps re-throttling: oscillation, not a latch.
    EXPECT_GE(downs, ups);
    EXPECT_LE(downs, ups + 1);
}

TEST(Thermal, ModeSaturatesAtW15AndMaxN)
{
    // A runaway power input drives the mode to the W15 floor and no
    // further; cooling off recovers one step per step() call until the
    // MaxN ceiling, where stepUp is the identity.
    ThermalSpec spec;
    spec.rThermal = 5.0;
    spec.cThermal = 1.0; // near-instant response
    ThermalSimulator sim(spec);
    for (int i = 0; i < 50; ++i)
        sim.step(200.0, 5.0);
    EXPECT_EQ(sim.mode(), PowerMode::W15);
    for (int i = 0; i < 50; ++i)
        sim.step(0.0, 5.0);
    EXPECT_EQ(sim.mode(), PowerMode::MaxN);
    sim.step(0.0, 5.0); // one more stepUp at the ceiling: stays MaxN
    EXPECT_EQ(sim.mode(), PowerMode::MaxN);
}

TEST(Thermal, ResetRestoresInitialState)
{
    ThermalSimulator sim;
    for (int i = 0; i < 600; ++i)
        sim.step(55.0, 1.0);
    EXPECT_GT(sim.temperature(), sim.spec().initialC);
    EXPECT_FALSE(sim.trajectory().empty());
    sim.reset();
    EXPECT_DOUBLE_EQ(sim.temperature(), sim.spec().initialC);
    EXPECT_EQ(sim.mode(), PowerMode::MaxN);
    EXPECT_FALSE(sim.throttled());
    EXPECT_TRUE(sim.trajectory().empty());
}

// --- Macro-stepping support (DESIGN.md §10) --------------------------

TEST(Thermal, AdvanceMatchesIteratedStepsWithinRoundoff)
{
    // Both simulators see the same quanta; advance() composes them in
    // closed form.  Choose a power low enough that no governor
    // transition fires, so the comparison isolates the RC arithmetic.
    ThermalSimulator stepped;
    ThermalSimulator fast;
    const int k = 137;
    ThermalSample last{};
    for (int i = 0; i < k; ++i)
        last = stepped.step(20.0, 0.75);
    const auto coalesced = fast.advance(20.0, 0.75, k);
    EXPECT_NEAR(fast.temperature(), stepped.temperature(), 1e-9);
    EXPECT_EQ(fast.mode(), stepped.mode());
    EXPECT_NEAR(coalesced.time, last.time, 1e-9);
    EXPECT_EQ(coalesced.mode, last.mode);
    EXPECT_NEAR(coalesced.power, last.power, 1e-9);
    // One coalesced trajectory sample vs k per-step samples.
    EXPECT_EQ(fast.trajectory().size(), 1u);
    EXPECT_EQ(stepped.trajectory().size(), static_cast<std::size_t>(k));
}

TEST(Thermal, AdvanceAppliesGovernorOnceAtSegmentEnd)
{
    // 55 W heats past the throttle point well inside the segment; the
    // governor still only acts once, at the end, stepping down exactly
    // one mode -- the caller is responsible for bounding segments with
    // stepsToThresholdCrossing() when that matters.
    ThermalSimulator sim;
    sim.advance(55.0, 1.0, 100000);
    EXPECT_EQ(sim.mode(), PowerMode::W50);
    EXPECT_GT(sim.temperature(), sim.spec().throttleC);
}

TEST(Thermal, StepsToThresholdCrossingMatchesBruteForce)
{
    // 55 W from ambient: heating toward 102 C crosses 85 C after some
    // finite number of 1 s quanta.  The solver must name the exact
    // quantum at which step() first changes mode.
    ThermalSimulator probe;
    const std::uint64_t k = probe.stepsToThresholdCrossing(55.0, 1.0);
    ASSERT_NE(k, UINT64_MAX);
    ASSERT_GE(k, 1u);
    ThermalSimulator sim;
    for (std::uint64_t i = 0; i + 1 < k; ++i) {
        sim.step(55.0, 1.0);
        ASSERT_EQ(sim.mode(), PowerMode::MaxN)
            << "governor fired early at quantum " << i;
    }
    sim.step(55.0, 1.0);
    EXPECT_EQ(sim.mode(), PowerMode::W50);
}

TEST(Thermal, StepsToThresholdCrossingCoolingMatchesBruteForce)
{
    // Heat at 55 W until the governor throttles (temperature just past
    // 85 C, mode W50), then cool at a near-idle draw: the solver must
    // name the quantum at which the recovery threshold is reached.
    ThermalSimulator sim;
    while (!sim.throttled())
        sim.step(55.0, 1.0);
    ASSERT_GT(sim.temperature(), sim.spec().recoverC);
    const PowerMode hot_mode = sim.mode();
    ASSERT_LT(powerModeScale(hot_mode), 1.0);
    const std::uint64_t k = sim.stepsToThresholdCrossing(4.0, 1.0);
    ASSERT_NE(k, UINT64_MAX);
    for (std::uint64_t i = 0; i + 1 < k; ++i) {
        sim.step(4.0, 1.0);
        ASSERT_EQ(sim.mode(), hot_mode)
            << "recovery fired early at quantum " << i;
    }
    sim.step(4.0, 1.0);
    EXPECT_GT(powerModeScale(sim.mode()), powerModeScale(hot_mode));
}

TEST(Thermal, StepsToThresholdCrossingNeverCases)
{
    // Asymptote inside the hysteresis band: 30 W -> 67 C steady state,
    // below throttleC while heating from ambient.
    ThermalSimulator sim;
    EXPECT_EQ(sim.stepsToThresholdCrossing(30.0, 1.0), UINT64_MAX);
    // Ladder-end no-op: already at MAXN and cooling -- stepUp would
    // not change the mode, so no governor-relevant crossing exists.
    EXPECT_EQ(sim.stepsToThresholdCrossing(0.0, 1.0), UINT64_MAX);
    // At the W15 floor while heating, stepDown is the identity.
    ThermalSimulator floor_sim(ThermalSpec{}, PowerMode::W15);
    EXPECT_EQ(floor_sim.stepsToThresholdCrossing(200.0, 1.0),
              UINT64_MAX);
}

TEST(Thermal, StepsToThresholdCrossingAlreadyPastReturnsOne)
{
    // Start above the throttle point while heating: the very first
    // quantum triggers the governor.
    ThermalSpec spec;
    spec.initialC = 90.0;
    ThermalSimulator sim(spec);
    EXPECT_EQ(sim.stepsToThresholdCrossing(55.0, 1.0), 1u);
}
