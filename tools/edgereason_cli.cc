/**
 * @file
 * Command-line driver for the EdgeReasoning library.
 *
 *   edgereason spec
 *   edgereason models
 *   edgereason characterize --model DSR1-Qwen-14B [--quant]
 *   edgereason evaluate --model DSR1-Llama-8B --policy 128T
 *                       [--parallel 4] [--quant]
 *                       [--dataset mmlu-redux] [--questions 1000]
 *   edgereason plan --budget 5.0 [--dataset mmlu-redux]
 *                   [--prompt-tokens 170] [--max-parallel 8]
 *   edgereason sweep [--dataset mmlu-redux] [--questions 500]
 *                    [--max-parallel 8] [--axis latency|cost|tokens]
 *                    [--no-quant]
 *   edgereason serve --model DeepScaleR-1.5B --qps 0.1
 *                    [--requests 100] [--mean-in 120]
 *                    [--mean-out 1024] [--max-batch 30]
 *                    [--scheduler fcfs|edf|spjf]
 *                    [--prefill-chunk 512]
 *                    [--faults] [--fault-seed 64023]
 *                    [--deadline 90] [--ambient 32]
 *                    [--brownout-rate 2] [--kv-shrink-rate 1]
 *                    [--degrade none|budget|fallback]
 *                    [--degrade-budget 256]
 *                    [--fallback-model DeepScaleR-1.5B]
 *                    [--checkpoint-dir DIR] [--checkpoint-every 64]
 *                    [--resume DIR] [--paranoid]
 *                    [--crash-at-step N] [--crash-at-time T]
 *                    [--crash-rate 0.5] [--exact-steps]
 *                    [--sessions 16] [--turns-per-session 4]
 *                    [--session-qps 0.5] [--turn-gap 20]
 *                    [--system-prompt 512]
 *                    [--prefix-cache on|off] [--prefix-evict lru|cost]
 *                    [--fleet N] [--router rr|least|deadline|cost]
 *                    [--hetero] [--node-faults]
 *                    [--node-crash-rate R] [--node-degrade-rate R]
 *                    [--node-slowdown-rate R] [--node-flap-rate R]
 *                    [--adaptive-health] [--health-quantile 0.95]
 *                    [--health-multiple 3] [--adaptive-timeout 4]
 *                    [--retry N] [--hedge F] [--cloud o4-mini]
 *                    [--fleet-journals DIR] [--crash-at-event N]
 *   edgereason replay <journal.bin|journal-dir> [--dump]
 *
 * Policies: Base, NR, <n>T (hard), <n>NC (soft), L1-<n>.
 *
 * Every command accepts --threads N to size the work-stealing pool
 * used by the sweep layers (default: EDGEREASON_THREADS, then the
 * hardware concurrency).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "accuracy/trace_gen.hh"
#include "cli/serve_options.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/edge_reasoning.hh"
#include "cost/cost_model.hh"
#include "engine/journal.hh"
#include "engine/server.hh"
#include "engine/trace_stream.hh"
#include "fleet/fleet.hh"
#include "hw/gpu_spec.hh"
#include "model/zoo.hh"

using namespace edgereason;

namespace {

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "error: %s\n\n", msg);
    std::fprintf(stderr,
        "usage: edgereason <command> [options]\n"
        "commands:\n"
        "  spec          print the Jetson AGX Orin hardware model\n"
        "  models        list the model zoo\n"
        "  characterize  fit the Section-IV analytical models\n"
        "  evaluate      run a strategy on a benchmark\n"
        "  plan          pick the best strategy for a latency budget\n"
        "  sweep         evaluate the strategy grid, print the "
        "Pareto frontier\n"
        "  serve         run the continuous-batching serving study\n"
        "  replay        re-derive a serving report from a "
        "write-ahead journal\n"
        "global options:\n"
        "  --threads N   sweep worker count (default "
        "EDGEREASON_THREADS, then hardware concurrency)\n"
        "run a command with bad arguments to see its options.\n");
    std::exit(2);
}

/** Minimal --key value parser. */
class Args
{
  public:
    Args(int argc, char **argv, int start)
    {
        for (int i = start; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                usage(("unexpected argument: " + key).c_str());
            key = key.substr(2);
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                kv_[key] = argv[++i];
            } else {
                kv_[key] = "true"; // boolean flag
            }
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? fallback : it->second;
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = kv_.find(key);
        if (it == kv_.end())
            return fallback;
        try {
            return std::stod(it->second);
        } catch (const std::exception &) {
            usage(("invalid number for --" + key + ": " + it->second)
                      .c_str());
        }
        return fallback; // unreachable: usage() exits
    }

    long long
    getInt(const std::string &key, long long fallback) const
    {
        auto it = kv_.find(key);
        if (it == kv_.end())
            return fallback;
        try {
            return std::stoll(it->second);
        } catch (const std::exception &) {
            usage(("invalid number for --" + key + ": " + it->second)
                      .c_str());
        }
        return fallback; // unreachable: usage() exits
    }

    bool
    getBool(const std::string &key) const
    {
        return kv_.count(key) > 0;
    }

  private:
    std::map<std::string, std::string> kv_;
};

acc::Dataset
parseDataset(const std::string &name)
{
    static const std::map<std::string, acc::Dataset> table = {
        {"mmlu-redux", acc::Dataset::MmluRedux},
        {"mmlu", acc::Dataset::Mmlu},
        {"aime2024", acc::Dataset::Aime2024},
        {"math500", acc::Dataset::Math500},
        {"naturalplan-calendar", acc::Dataset::NaturalPlanCalendar},
        {"naturalplan-meeting", acc::Dataset::NaturalPlanMeeting},
        {"naturalplan-trip", acc::Dataset::NaturalPlanTrip},
    };
    auto it = table.find(name);
    if (it == table.end())
        usage(("unknown dataset: " + name).c_str());
    return it->second;
}

strategy::TokenPolicy
parsePolicy(const std::string &s)
{
    using strategy::TokenPolicy;
    if (s == "Base" || s == "base")
        return TokenPolicy::base();
    if (s == "NR" || s == "nr")
        return TokenPolicy::noReasoning();
    if (s.rfind("L1-", 0) == 0)
        return TokenPolicy::l1(std::stoll(s.substr(3)));
    if (s.size() > 2 && s.substr(s.size() - 2) == "NC")
        return TokenPolicy::soft(std::stoll(s.substr(0, s.size() - 2)));
    if (s.size() > 1 && s.back() == 'T')
        return TokenPolicy::hard(std::stoll(s.substr(0, s.size() - 1)));
    usage(("unknown policy: " + s +
           " (expected Base, NR, <n>T, <n>NC, L1-<n>)").c_str());
}

int
cmdSpec()
{
    core::EdgeReasoning er;
    std::printf("%s\n", er.hardwareSummary().c_str());
    return 0;
}

int
cmdModels()
{
    Table t("model zoo");
    t.setHeader({"Name", "Category", "Params (B)", "fp16 (GB)",
                 "W4 (GB)", "KV bytes/token", "Max context"});
    for (model::ModelId id : model::allModels()) {
        const auto s = model::spec(id);
        const auto q = model::quantizedSpec(id);
        const char *cat = "non-reasoning";
        if (model::modelCategory(id) == model::ModelCategory::Reasoning)
            cat = "reasoning";
        else if (model::modelCategory(id) ==
                 model::ModelCategory::BudgetAware)
            cat = "budget-aware";
        t.row()
            .cell(s.name)
            .cell(cat)
            .cell(s.paramCount() / 1e9, 2)
            .cell(s.weightBytes() / 1e9, 1)
            .cell(q.weightBytes() / 1e9, 1)
            .cell(static_cast<long long>(s.kvBytesPerToken()))
            .cell(static_cast<long long>(s.maxContext));
    }
    t.print(std::cout);
    return 0;
}

int
cmdCharacterize(const Args &args)
{
    const auto id = model::modelIdFromName(
        args.get("model", "DSR1-Qwen-14B"));
    const bool quant = args.getBool("quant");
    core::EdgeReasoning er;
    const auto &c = er.characterization(id, quant);
    std::printf("%s%s on the simulated Jetson AGX Orin:\n",
                model::modelName(id), quant ? " (AWQ-W4)" : "");
    std::printf("  L_prefill(I) = %.3e*Ipad^2 + %.3e*Ipad + %.4f s\n",
                c.latency.prefill.a, c.latency.prefill.b,
                c.latency.prefill.c);
    std::printf("  TBT(ctx)     = %.3e*ctx + %.4f s  (%.1f tok/s)\n",
                c.latency.decode.m, c.latency.decode.n,
                1.0 / c.latency.decode.n);
    std::printf("  P_prefill    = %s\n",
                c.prefillPower.v > 0
                    ? (formatFixed(c.prefillPower.u, 1) + " W below " +
                       std::to_string(c.prefillPower.v) + ", then " +
                       formatFixed(c.prefillPower.w, 2) + "*ln(I) + " +
                       formatFixed(c.prefillPower.x, 2)).c_str()
                    : (formatFixed(c.prefillPower.u, 2) +
                       " W (constant)").c_str());
    std::printf("  P_decode     = %.2f*ln(O) + %.2f W (floor %.1f)\n",
                c.decodePower.y, c.decodePower.z, c.decodePower.floor);
    std::printf("  validation   : prefill %.1f%%, decode %.2f%%, "
                "total %.2f%% MAPE; energy %.1f%% MAPE\n",
                c.prefillMapePct, c.decodeMapePct, c.totalMapePct,
                c.totalEnergyMapePct);
    return 0;
}

int
cmdEvaluate(const Args &args)
{
    strategy::InferenceStrategy s;
    s.model = model::modelIdFromName(args.get("model",
                                              "DSR1-Llama-8B"));
    s.quantized = args.getBool("quant");
    s.policy = parsePolicy(args.get("policy", "Base"));
    s.parallel = static_cast<int>(args.getInt("parallel", 1));
    const auto dataset = parseDataset(args.get("dataset",
                                               "mmlu-redux"));
    const auto limit = static_cast<std::size_t>(
        args.getInt("questions", 0));

    core::EdgeReasoning er;
    const auto rep = er.evaluate(s, dataset, limit);
    std::printf("%s on %s (%zu questions):\n", s.label().c_str(),
                acc::datasetName(dataset), rep.questions);
    std::printf("  accuracy   : %.1f%%\n", rep.accuracyPct);
    std::printf("  tokens/Q   : %.1f (total generated %.1f)\n",
                rep.avgTokens, rep.avgSumTokens);
    std::printf("  latency/Q  : %.2f s\n", rep.avgLatency);
    std::printf("  energy/Q   : %.1f J\n", rep.avgEnergy);
    std::printf("  $/1M tokens: %.4f energy + %.4f hardware = %.4f\n",
                rep.cost.energyPerMTok, rep.cost.hardwarePerMTok,
                rep.cost.totalPerMTok());
    return 0;
}

int
cmdPlan(const Args &args)
{
    core::PlanRequest req;
    req.dataset = parseDataset(args.get("dataset", "mmlu-redux"));
    req.latencyBudget = args.getDouble("budget", 5.0);
    req.promptTokens = args.getInt("prompt-tokens", 0);
    req.maxParallel = static_cast<int>(args.getInt("max-parallel", 8));
    req.allowQuantized = !args.getBool("no-quant");

    core::EdgeReasoning er;
    const auto plan = er.plan(req);
    if (!plan) {
        std::printf("no strategy meets a %.2f s budget on %s\n",
                    req.latencyBudget, acc::datasetName(req.dataset));
        return 1;
    }
    std::printf("budget %.2f s on %s -> %s\n", req.latencyBudget,
                acc::datasetName(req.dataset),
                plan->strategy.label().c_str());
    std::printf("  max decodable tokens: %lld\n",
                static_cast<long long>(plan->maxTokenBudget));
    std::printf("  predicted: %.1f%% accuracy at %.2f s, %.1f J\n",
                plan->predicted.accuracyPct, plan->predicted.avgLatency,
                plan->predicted.avgEnergy);
    std::printf("  runners-up:\n");
    for (std::size_t i = 1;
         i < std::min<std::size_t>(4, plan->candidates.size()); ++i) {
        const auto &c = plan->candidates[i];
        std::printf("    %-32s %.1f%% at %.2f s\n",
                    c.strat.label().c_str(), c.accuracyPct,
                    c.avgLatency);
    }
    return 0;
}

int
cmdSweep(const Args &args)
{
    core::PlanRequest req;
    req.dataset = parseDataset(args.get("dataset", "mmlu-redux"));
    req.maxParallel = static_cast<int>(args.getInt("max-parallel", 8));
    req.allowQuantized = !args.getBool("no-quant");
    const auto questions = static_cast<std::size_t>(
        args.getInt("questions", 500));

    const std::string axis_name = args.get("axis", "latency");
    core::FrontierAxis axis;
    if (axis_name == "latency")
        axis = core::FrontierAxis::Latency;
    else if (axis_name == "cost")
        axis = core::FrontierAxis::Cost;
    else if (axis_name == "tokens")
        axis = core::FrontierAxis::Tokens;
    else
        usage(("unknown axis: " + axis_name).c_str());

    core::EdgeReasoning er;
    const auto grid = er.planner().candidateStrategies(req);
    std::printf("sweeping %zu strategies on %s (%zu questions, "
                "%u threads)\n",
                grid.size(), acc::datasetName(req.dataset), questions,
                ThreadPool::global().threadCount());
    const auto reports = core::sweepStrategies(
        er.evaluator(), grid, req.dataset, questions);
    const auto frontier = core::paretoFrontier(reports, axis);

    Table t("accuracy-" + axis_name + " Pareto frontier");
    t.setHeader({"Strategy", "Accuracy (%)", "Tokens/Q",
                 "Latency (s)", "$/1M tok"});
    for (const auto &r : frontier) {
        t.row()
            .cell(r.strat.label())
            .cell(r.accuracyPct, 1)
            .cell(r.avgTokens, 1)
            .cell(r.avgLatency, 2)
            .cell(r.cost.totalPerMTok(), 4);
    }
    t.print(std::cout);
    return 0;
}

/**
 * Print the body of a ServingReport.  Shared between `serve` and
 * `replay` so a replayed report renders exactly like the live one.
 * @param degrade_name  degrade-mode label for the throttle line, or
 *   null when unknown (replay has no ServerConfig).
 */
void
printServingReport(const engine::ServingReport &rep, bool show_outcomes,
                   const char *degrade_name)
{
    const auto cost = cost::edgeCost(rep.totalEnergy, rep.makespan,
                                     rep.generatedTokens);
    std::printf("  throughput : %.3f QPS\n", rep.throughputQps);
    std::printf("  latency    : mean %.1f s, p50 %.1f s, p95 %.1f s, "
                "p99 %.1f s\n",
                rep.meanLatency, rep.p50Latency, rep.p95Latency,
                rep.p99Latency);
    std::printf("  queueing   : mean wait %.1f s, p99 wait %.1f s, "
                "peak depth %zu\n",
                rep.meanQueueDelay, rep.p99QueueDelay,
                rep.peakQueueDepth);
    std::printf("  batching   : avg %.1f, utilization %.0f%%\n",
                rep.avgBatch, 100.0 * rep.utilization);
    std::printf("  energy     : %.1f J/query, $%.4f per 1M tokens\n",
                rep.energyPerQuery, cost.totalPerMTok());
    if (rep.cachedPrefixTokens > 0.0)
        std::printf("  prefix     : %.0f%% of prompt tokens served "
                    "from cache, %.1f s prefill saved, %llu "
                    "evictions\n",
                    100.0 * rep.prefixHitRate, rep.prefillSecondsSaved,
                    static_cast<unsigned long long>(
                        rep.prefixEvictions));
    if (!show_outcomes)
        return;
    std::printf("  outcomes   : %zu completed, %zu timed out, "
                "%zu shed (%llu preemptions, %zu retried, "
                "%zu degraded)\n",
                rep.completed, rep.timedOut, rep.shed,
                static_cast<unsigned long long>(rep.preemptions),
                rep.retriedCompleted, rep.degradedCompleted);
    std::printf("  goodput    : %.3f QPS, deadline hit rate %.0f%%\n",
                rep.goodputQps, 100.0 * rep.deadlineHitRate);
    if (degrade_name)
        std::printf("  throttle   : %.0f%% of busy time below MAXN "
                    "(degrade=%s)\n",
                    100.0 * rep.throttleResidency, degrade_name);
    else
        std::printf("  throttle   : %.0f%% of busy time below MAXN\n",
                    100.0 * rep.throttleResidency);
}

void
printFleetReport(const fleet::FleetReport &rep)
{
    std::printf("  outcomes   : %zu served, %zu timed out, %zu shed, "
                "%zu offloaded (of %zu)\n",
                rep.served, rep.timedOut, rep.shed, rep.offloaded,
                rep.arrivals);
    std::printf("  resilience : %zu retries, %zu failovers, %zu "
                "hedges (%zu wins, %zu waste), %zu cancelled legs\n",
                rep.retries, rep.failovers, rep.hedgesLaunched,
                rep.hedgeWins, rep.hedgeWaste, rep.cancelledLegs);
    if (rep.adaptiveHealth)
        std::printf("  health     : %zu adaptive-health ejections "
                    "(latency-quantile breaker)\n",
                    rep.adaptiveEjections);
    std::printf("  goodput    : %.3f QPS good / %.3f QPS total, "
                "deadline hit rate %.0f%%\n",
                rep.goodput, rep.throughput,
                100.0 * rep.deadlineHitRate);
    std::printf("  latency    : mean %.2f s, p50 %.2f s, p99 %.2f s, "
                "p99.9 %.2f s\n",
                rep.meanLatency, rep.p50Latency, rep.p99Latency,
                rep.p999Latency);
    std::printf("  energy     : %.0f J total, %.1f J/query\n",
                rep.totalEnergy, rep.energyPerQuery);
    std::printf("  dollars    : $%.4f edge + $%.4f cloud = $%.6f "
                "per query\n",
                rep.edgeDollars, rep.cloudDollars, rep.dollarsPerQuery);
    for (const auto &n : rep.nodes)
        std::printf("  node %2d    : %zu served, %zu timed out, %zu "
                    "cancelled, %llu crashes, %.0f J, %s\n",
                    n.id, n.served, n.timedOut, n.cancelled,
                    static_cast<unsigned long long>(n.crashes),
                    n.energy, n.up ? "up" : "down");
}

int
cmdServeFleet(const cli::ServeOptions &o, engine::ServerConfig cfg)
{
    const auto id = model::modelIdFromName(o.model);
    static const hw::PowerMode kHetero[] = {
        hw::PowerMode::MaxN, hw::PowerMode::W50, hw::PowerMode::W30,
        hw::PowerMode::W15};

    fleet::FleetConfig fc;
    fc.server = cfg;
    fc.router = o.router;
    for (long long i = 0; i < o.fleet; ++i) {
        fleet::NodeSpec spec;
        spec.model = id;
        spec.quantized = o.quant;
        if (o.hetero)
            spec.powerMode = kHetero[static_cast<std::size_t>(i) % 4];
        fc.nodes.push_back(spec);
    }
    fc.maxRetries = static_cast<int>(o.retry);
    fc.retryBackoff = o.retryBackoff;
    fc.requestTimeout = o.requestTimeout;
    fc.hedgeFraction = o.hedge;
    fc.adaptiveHealth = o.adaptiveHealth;
    fc.healthQuantile = o.healthQuantile;
    fc.healthLatencyMultiple = o.healthMultiple;
    fc.adaptiveTimeoutMultiple = o.adaptiveTimeout;
    fc.nodeIndex = o.fleetIndex;
    fc.paranoid = o.paranoid;
    fc.journalDir = o.fleetJournals;
    if (!o.cloud.empty()) {
        fc.cloud.enabled = true;
        fc.cloud.price = o.cloud == "o4-mini" ? cost::o4Mini()
                                              : cost::o1Preview();
        fc.cloud.rtt = o.cloudRtt;
    }

    Rng rng(o.seed, "cli-serve");
    std::vector<engine::ServerRequest> trace;
    if (!o.stream) {
        trace = engine::ServingSimulator::poissonTrace(
            rng, static_cast<std::size_t>(o.requests), o.qps, o.meanIn,
            o.meanOut);
        for (auto &r : trace)
            r.deadline = o.deadline;
    }

    fc.nodeFaults.seed = static_cast<std::uint64_t>(o.faultSeed);
    // A streaming run never materializes the trace, so its fault
    // horizon uses the expected trace end instead of the drawn one;
    // fault schedules (and hence reports) match the materialized path
    // exactly whenever the fault rates are zero.
    fc.nodeFaults.horizon = o.stream
        ? static_cast<double>(o.requests) / o.qps + 3600.0
        : trace.back().arrival + 3600.0;
    fc.nodeFaults.crashesPerHour = o.nodeCrashRate;
    fc.nodeFaults.meanRebootSeconds = o.nodeReboot;
    fc.nodeFaults.degradesPerHour = o.nodeDegradeRate;
    fc.nodeFaults.meanDegradeSeconds = o.nodeDegradeMean;
    fc.nodeFaults.slowdownsPerHour = o.nodeSlowdownRate;
    fc.nodeFaults.meanSlowdownSeconds = o.nodeSlowdownMean;
    fc.nodeFaults.slowdownMultiplier = o.nodeSlowdownMult;
    fc.nodeFaults.flapsPerHour = o.nodeFlapRate;
    fc.nodeFaults.meanFlapSeconds = o.nodeFlapMean;
    if (o.nodeFaults) {
        auto &b = fc.nodeFaults.behavioural;
        b.horizon = fc.nodeFaults.horizon;
        b.thermal = true;
        b.thermalSpec.rThermal = 2.5;
        b.thermalSpec.cThermal = 50.0;
        b.thermalSpec.ambientC = o.ambient;
        b.thermalSpec.initialC = b.thermalSpec.ambientC;
        b.brownoutsPerHour = o.brownoutRate;
        b.kvShrinksPerHour = o.kvShrinkRate;
    }

    fleet::FleetDurabilityOptions dur;
    dur.checkpointDir = o.checkpointDir;
    dur.checkpointEvery = o.checkpointEvery;
    dur.resume = o.resume;
    dur.crashAtEvent = o.crashAtEvent;
    dur.crashAtTime = o.crashAtTime;

    fleet::FleetSimulator sim(fc);
    fleet::FleetReport rep;
    if (o.stream) {
        // Same Rng, same draw order as the materialized branch: the
        // streamed requests are bit-identical to the trace run()
        // would have seen.
        engine::PoissonTraceStream src(
            rng, static_cast<std::size_t>(o.requests), o.qps, o.meanIn,
            o.meanOut);
        src.setDeadline(o.deadline);
        rep = sim.runStream(src, o.approxStats);
        std::printf("served %lld requests (streamed%s) on a %lld-node "
                    "fleet of %s (router=%s, scheduler=%s, offered "
                    "%.3f QPS):\n",
                    o.requests, o.approxStats ? ", approx stats" : "",
                    o.fleet, o.model.c_str(),
                    fleet::routerPolicyName(rep.router),
                    engine::schedulerPolicyName(cfg.scheduler), o.qps);
        printFleetReport(rep);
        return 0;
    }
    try {
        rep = sim.run(trace, dur);
    } catch (const fleet::FleetSimulatedCrash &c) {
        std::fprintf(stderr, "%s\n", c.what());
        std::fprintf(stderr,
                     "fleet checkpoints%s are intact under %s; "
                     "finish the run with:\n"
                     "  edgereason serve ... --fleet %lld --resume "
                     "%s\n",
                     o.fleetJournals.empty() ? "" : " and journals",
                     o.checkpointDir.c_str(), o.fleet,
                     o.checkpointDir.c_str());
        return 3;
    }
    std::printf("served %zu requests on a %lld-node fleet of %s "
                "(router=%s, scheduler=%s, offered %.3f QPS):\n",
                trace.size(), o.fleet, o.model.c_str(),
                fleet::routerPolicyName(rep.router),
                engine::schedulerPolicyName(cfg.scheduler), o.qps);
    printFleetReport(rep);
    return 0;
}

int
cmdServe(const std::vector<std::string> &raw)
{
    std::string err;
    const auto parsed = cli::parseServeOptions(raw, &err);
    if (!parsed)
        usage(err.c_str());
    const cli::ServeOptions &o = *parsed;

    const auto id = model::modelIdFromName(o.model);
    core::EdgeReasoning er;
    auto &eng = er.registry().engineFor(id, o.quant);

    engine::ServerConfig cfg;
    cfg.maxBatch = o.maxBatch;
    cfg.prefillChunk = o.prefillChunk;
    cfg.scheduler = o.scheduler;
    if (o.scheduler == engine::SchedulerPolicy::Spjf) {
        // SPJF ranks jobs by the fitted Section-IV latency model of
        // the served engine (no oracle knowledge of run times).
        cfg.spjfModel = er.characterization(id, o.quant).latency;
    }
    cfg.degrade.mode = o.degrade;
    cfg.degrade.budget = strategy::TokenPolicy::hard(o.degradeBudget);
    cfg.exactSteps = o.exactSteps;
    cfg.prefixCache.enabled = o.prefixCacheOn();
    cfg.prefixCache.evict = o.prefixEvict;
    if (o.fleet >= 1)
        return cmdServeFleet(o, cfg);
    engine::ServingSimulator srv(eng, cfg);
    if (cfg.degrade.mode == engine::DegradeMode::Fallback) {
        // Default fallback: the quantized build of the primary model.
        const auto fb_id = o.fallbackModel.empty()
            ? id
            : model::modelIdFromName(o.fallbackModel);
        const bool fb_quant =
            o.fallbackModel.empty() ? true : o.fallbackQuant;
        srv.setFallbackEngine(er.registry().engineFor(fb_id, fb_quant));
    }

    if (o.replications > 1) {
        // Sharded mode (DESIGN.md §11): independent trace
        // replications partitioned across the thread pool.  Each
        // trace comes from its own named RngBank stream, so the
        // reports are bit-identical at any --shards/--threads value.
        RngBank bank(static_cast<std::uint64_t>(o.seed));
        auto traces = engine::ServingSimulator::replicatedPoissonTraces(
            bank, static_cast<std::size_t>(o.replications),
            static_cast<std::size_t>(o.requests), o.qps, o.meanIn,
            o.meanOut);
        for (auto &trace : traces)
            for (auto &r : trace)
                r.deadline = o.deadline;
        const std::size_t shards = o.shards > 0
            ? static_cast<std::size_t>(o.shards)
            : traces.size();
        const auto reports = engine::ServingSimulator::runSharded(
            eng, cfg, traces, shards);
        std::printf("served %lld replications x %lld requests on %s "
                    "(scheduler=%s, shards=%zu, offered %.3f QPS "
                    "each):\n",
                    o.replications, o.requests,
                    eng.spec().name.c_str(),
                    engine::schedulerPolicyName(cfg.scheduler), shards,
                    o.qps);
        RunningStats qps_stats, p95_stats;
        for (std::size_t i = 0; i < reports.size(); ++i) {
            const auto &rep = reports[i];
            std::printf("  replication %2zu: %.3f QPS, p95 %.1f s, "
                        "%zu completed\n",
                        i, rep.throughputQps, rep.p95Latency,
                        rep.completed);
            qps_stats.add(rep.throughputQps);
            p95_stats.add(rep.p95Latency);
        }
        std::printf("  across replications: throughput %.3f +- %.3f "
                    "QPS, p95 latency %.1f +- %.1f s\n",
                    qps_stats.mean(), qps_stats.stddev(),
                    p95_stats.mean(), p95_stats.stddev());
        return 0;
    }

    Rng rng(o.seed, "cli-serve");
    std::vector<engine::ServerRequest> trace;
    if (o.sessions > 0) {
        // Multi-turn session workload (DESIGN.md §13): shared system
        // prompt, each turn re-submits the full prior context.  The
        // mean output splits 3:1 between reasoning and answer tokens.
        acc::SessionTraceConfig sc;
        sc.sessions = static_cast<std::size_t>(o.sessions);
        sc.turnsPerSession =
            static_cast<std::size_t>(o.turnsPerSession);
        sc.sessionQps = o.sessionQps;
        sc.meanTurnGap = o.turnGap;
        sc.systemPromptTokens = static_cast<Tokens>(o.systemPrompt);
        sc.meanUserTokens = o.meanIn;
        sc.meanThinkTokens = 0.75 * o.meanOut;
        sc.meanAnswerTokens = 0.25 * o.meanOut;
        trace = acc::generateSessionTrace(sc, rng);
    } else {
        trace = engine::ServingSimulator::poissonTrace(
            rng, static_cast<std::size_t>(o.requests), o.qps, o.meanIn,
            o.meanOut);
    }
    for (auto &r : trace)
        r.deadline = o.deadline;

    const bool crash_on = o.crashAtStep >= 0 || o.crashAtTime >= 0.0 ||
        o.crashRate > 0.0;
    engine::FaultPlan plan;
    if (o.faults || crash_on) {
        engine::FaultConfig fc;
        fc.seed = static_cast<std::uint64_t>(o.faultSeed);
        fc.horizon = trace.back().arrival + 600.0;
        if (o.faults) {
            fc.thermal = true;
            // Passively-cooled deployment: higher junction-to-ambient
            // resistance and a warm enclosure, so sustained decode load
            // actually reaches the throttle point (a desk fan keeps the
            // default spec below it forever).
            fc.thermalSpec.rThermal = 2.5;
            fc.thermalSpec.cThermal = 50.0; // small passive sink
            fc.thermalSpec.ambientC = o.ambient;
            fc.thermalSpec.initialC = fc.thermalSpec.ambientC;
            fc.brownoutsPerHour = o.brownoutRate;
            fc.kvShrinksPerHour = o.kvShrinkRate;
        }
        fc.crash.atStep = o.crashAtStep;
        fc.crash.atTime = o.crashAtTime;
        fc.crash.perHour = o.crashRate;
        plan = engine::FaultPlan(fc);
    }

    engine::DurabilityOptions dur;
    dur.checkpointDir = o.checkpointDir;
    dur.checkpointEvery = o.checkpointEvery;
    dur.resume = o.resume;
    dur.paranoid = o.paranoid;

    engine::ServingReport rep;
    try {
        rep = srv.run(trace, plan, dur);
    } catch (const engine::SimulatedCrash &c) {
        std::fprintf(stderr, "%s\n", c.what());
        std::fprintf(stderr,
                     "journal and checkpoints are intact under %s; "
                     "finish the run with:\n"
                     "  edgereason serve ... --resume %s\n",
                     o.checkpointDir.c_str(), o.checkpointDir.c_str());
        return 3;
    }
    if (o.sessions > 0)
        std::printf("served %zu requests (%lld sessions x %lld "
                    "turns) on %s (scheduler=%s, prefix-cache=%s, "
                    "evict=%s):\n",
                    trace.size(), o.sessions, o.turnsPerSession,
                    eng.spec().name.c_str(),
                    engine::schedulerPolicyName(rep.schedulerPolicy),
                    cfg.prefixCache.enabled ? "on" : "off",
                    engine::prefixEvictPolicyName(
                        cfg.prefixCache.evict));
    else
        std::printf("served %zu requests on %s (scheduler=%s, "
                    "prefill-chunk=%lld, offered %.3f QPS):\n",
                    trace.size(), eng.spec().name.c_str(),
                    engine::schedulerPolicyName(rep.schedulerPolicy),
                    static_cast<long long>(cfg.prefillChunk), o.qps);
    printServingReport(rep, plan.active() || o.deadline > 0.0,
                       engine::degradeModeName(cfg.degrade.mode));
    return 0;
}

/**
 * Replay every per-node incarnation journal under @p dir (a fleet
 * `--fleet-journals` directory of node-<id>-inc<k>.bin WALs) and
 * print one summary line per incarnation plus fleet totals.  With
 * @p dump, print each journal's text dump instead.
 */
int
replayFleetJournals(const std::string &dir, bool dump)
{
    struct Entry
    {
        int node;
        unsigned long long inc;
        std::string path;
    };
    std::vector<Entry> entries;
    for (const auto &de : std::filesystem::directory_iterator(dir)) {
        if (!de.is_regular_file())
            continue;
        const std::string name = de.path().filename().string();
        int node = -1, consumed = 0;
        unsigned long long inc = 0;
        if (std::sscanf(name.c_str(), "node-%d-inc%llu.bin%n", &node,
                        &inc, &consumed) != 2 ||
            consumed != static_cast<int>(name.size()))
            continue;
        entries.push_back({node, inc, de.path().string()});
    }
    if (entries.empty())
        usage(("no node-<id>-inc<k>.bin journals under " + dir +
               " (expected a --fleet-journals directory)")
                  .c_str());
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.node != b.node ? a.node < b.node
                                          : a.inc < b.inc;
              });
    if (dump) {
        for (const auto &e : entries) {
            std::printf("=== node %d incarnation %llu: %s ===\n",
                        e.node, e.inc, e.path.c_str());
            engine::dumpJournalText(e.path, std::cout);
        }
        return 0;
    }
    std::printf("replaying %zu node journals under %s:\n",
                entries.size(), dir.c_str());
    std::size_t completed = 0, timed_out = 0, shed = 0;
    double energy = 0.0;
    for (const auto &e : entries) {
        engine::ServingReport rep;
        try {
            rep = engine::replayServingReport(e.path);
        } catch (const std::exception &ex) {
            // An incarnation killed before its first batch step
            // journals only a run-begin record; report it instead of
            // aborting the whole directory.
            std::printf("  node %2d inc %llu: not replayable "
                        "(%s)\n",
                        e.node, e.inc, ex.what());
            continue;
        }
        std::printf("  node %2d inc %llu: %zu completed, %zu timed "
                    "out, %zu shed, %.0f J, makespan %.1f s "
                    "(scheduler=%s)\n",
                    e.node, e.inc, rep.completed, rep.timedOut,
                    rep.shed, rep.totalEnergy, rep.makespan,
                    engine::schedulerPolicyName(rep.schedulerPolicy));
        completed += rep.completed;
        timed_out += rep.timedOut;
        shed += rep.shed;
        energy += rep.totalEnergy;
    }
    std::printf("  fleet      : %zu completed, %zu timed out, "
                "%zu shed, %.0f J across %zu incarnation "
                "journals\n",
                completed, timed_out, shed, energy, entries.size());
    return 0;
}

int
cmdReplay(const std::vector<std::string> &raw)
{
    std::string path;
    bool dump = false;
    for (const auto &tok : raw) {
        if (tok == "--dump")
            dump = true;
        else if (tok.rfind("--", 0) == 0)
            usage(("unknown replay flag: " + tok).c_str());
        else if (path.empty())
            path = tok;
        else
            usage(("unexpected argument: " + tok).c_str());
    }
    if (path.empty())
        usage("replay needs a journal file or fleet journal "
              "directory: edgereason replay <journal.bin|dir> "
              "[--dump]");
    if (std::filesystem::is_directory(path))
        return replayFleetJournals(path, dump);
    if (dump) {
        engine::dumpJournalText(path, std::cout);
        return 0;
    }
    const auto rep = engine::replayServingReport(path);
    std::printf("replayed %s (scheduler=%s):\n", path.c_str(),
                engine::schedulerPolicyName(rep.schedulerPolicy));
    printServingReport(rep, true, nullptr);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Global flags may precede the command:
    //   edgereason --threads 4 sweep ...  ==  edgereason sweep --threads 4 ...
    int cmd_at = 1;
    while (cmd_at < argc && std::string(argv[cmd_at]) == "--threads")
        cmd_at += 2;
    if (cmd_at >= argc)
        usage();
    const std::string cmd = argv[cmd_at];
    if (cmd == "replay") {
        // Dispatched before the generic Args parse: replay takes a
        // positional journal path, which Args would reject.
        std::vector<std::string> raw(argv + cmd_at + 1, argv + argc);
        try {
            return cmdReplay(raw);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }
    const Args pre(cmd_at, argv, 1);
    const Args args(argc, argv, cmd_at + 1);
    const long long threads =
        args.getInt("threads", pre.getInt("threads", 0));
    if (threads > 0)
        ThreadPool::setGlobalThreads(static_cast<unsigned>(threads));
    try {
        if (cmd == "spec")
            return cmdSpec();
        if (cmd == "models")
            return cmdModels();
        if (cmd == "characterize")
            return cmdCharacterize(args);
        if (cmd == "evaluate")
            return cmdEvaluate(args);
        if (cmd == "plan")
            return cmdPlan(args);
        if (cmd == "sweep")
            return cmdSweep(args);
        if (cmd == "serve") {
            std::vector<std::string> raw(argv + cmd_at + 1,
                                         argv + argc);
            return cmdServe(raw);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    usage(("unknown command: " + cmd).c_str());
}
