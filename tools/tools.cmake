# Command-line tools.  Included from the top level so the binaries land
# in ${CMAKE_BINARY_DIR}/tools without CMake clutter.

add_executable(edgereason_cli ${CMAKE_CURRENT_LIST_DIR}/edgereason_cli.cc)
target_link_libraries(edgereason_cli PRIVATE edgereason)
set_target_properties(edgereason_cli PROPERTIES
    OUTPUT_NAME edgereason
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/tools)
